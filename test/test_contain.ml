(* Soundness of the semantic analyzer (Contain): minimization
   preserves results and page accesses on all three sites (seeds
   7/21/42), containment is reflexive and transitive on the planner's
   candidate plans, and the static verdicts (unsat, fold, subsumption)
   fire exactly where they should. *)

open Webviews

let schema = Sitegen.University.schema
let registry = Sitegen.University.view

let uni = lazy (Sitegen.University.build ())

let instance =
  lazy
    (let u = Lazy.force uni in
     let http = Websim.Http.connect (Sitegen.University.site u) in
     Websim.Crawler.crawl schema http)

let stats = lazy (Stats.of_instance (Lazy.force instance))

let parse sql = Sql_parser.parse registry sql
let algebra sql = Conjunctive.to_algebra (parse sql)

let rows_of rel =
  Adm.Relation.rows rel
  |> List.map (fun t -> List.map (fun (_, v) -> Adm.Value.to_string v) t)
  |> List.sort compare

(* A live source that records every URL the executor reads, so two
   plans can be compared on their distinct-GET sets, not just counts. *)
let logged_source site_schema http =
  let seen = Hashtbl.create 64 in
  let base = Eval.live_source site_schema http in
  let src =
    {
      base with
      Eval.fetch =
        (fun ~scheme ~url ->
          Hashtbl.replace seen url ();
          base.Eval.fetch ~scheme ~url);
    }
  in
  (src, fun () -> Hashtbl.fold (fun u () acc -> u :: acc) seen [] |> List.sort compare)

(* --- static verdict units ------------------------------------------ *)

let test_unsat_pred () =
  let open Pred in
  let i n = Const (Adm.Value.int n) in
  let x = Attr "x" in
  let t = Alcotest.(check bool) in
  t "x=3 and x=5" true (Contain.unsat_pred [ atom x Eq (i 3); atom x Eq (i 5) ]);
  t "x<2 and x>7" true (Contain.unsat_pred [ atom x Lt (i 2); atom x Gt (i 7) ]);
  t "x<x" true (Contain.unsat_pred [ atom x Lt x ]);
  t "x>=2, x<=2, x<>2" true
    (Contain.unsat_pred [ atom x Ge (i 2); atom x Le (i 2); atom x Neq (i 2) ]);
  t "x=3 and x<5 is satisfiable" false
    (Contain.unsat_pred [ atom x Eq (i 3); atom x Lt (i 5) ]);
  t "y=3 via y=x, x=5" true
    (Contain.unsat_pred
       [ atom (Attr "y") Eq (i 3); atom (Attr "y") Eq x; atom x Eq (i 5) ]);
  t "empty conjunction" false (Contain.unsat_pred [])

let test_unsat_expr () =
  let e =
    algebra
      "SELECT p.PName FROM Professor p WHERE p.Rank = 'Full' AND p.Rank = \
       'Assistant'"
  in
  Alcotest.(check bool) "contradictory bindings" true (Contain.unsat_expr e);
  Alcotest.(check bool)
    "satisfiable query" false
    (Contain.unsat_expr (algebra "SELECT p.PName FROM Professor p"))

(* --- containment units --------------------------------------------- *)

let q_all = "SELECT p.PName FROM Professor p"
let q_full = "SELECT p.PName FROM Professor p WHERE p.Rank = 'Full'"

let q_full_cs =
  "SELECT p.PName FROM Professor p, ProfDept d WHERE p.PName = d.PName AND \
   p.Rank = 'Full' AND d.DName = 'Computer Science'"

let test_contains_refinement () =
  let t = Alcotest.(check bool) in
  t "restricted in general" true (Contain.contains (algebra q_full) (algebra q_all));
  t "general not proven in restricted" false
    (Contain.contains (algebra q_all) (algebra q_full));
  t "joined restriction in general" true
    (Contain.contains (algebra q_full_cs) (algebra q_all));
  t "transitive chain end-to-end" true
    (Contain.contains (algebra q_full_cs) (algebra q_full)
    && Contain.contains (algebra q_full) (algebra q_all)
    && Contain.contains (algebra q_full_cs) (algebra q_all))

let test_equiv_permutation () =
  let a =
    algebra
      "SELECT p.PName FROM Professor p, ProfDept d WHERE p.PName = d.PName AND \
       p.Rank = 'Full'"
  in
  let b =
    algebra
      "SELECT q.PName FROM ProfDept e, Professor q WHERE q.Rank = 'Full' AND \
       e.PName = q.PName"
  in
  Alcotest.(check bool) "permuted query equivalent" true (Contain.equiv a b);
  Alcotest.(check bool)
    "permuted query same plan key" true
    (String.equal (Contain.plan_key a) (Contain.plan_key b))

(* Regression: a closed bound touching the excluded constant still
   admits it — x >= c must not prove x <> c, and x >= c is not
   equivalent to x > c; only a strict bound separates. *)
let test_closed_bound_is_not_exclusion () =
  let q cmp =
    algebra (Fmt.str "SELECT p.PName FROM Professor p WHERE p.Rank %s 'Full'" cmp)
  in
  let t = Alcotest.(check bool) in
  t "x>=c does not prove x<>c" false (Contain.contains (q ">=") (q "<>"));
  t "x<=c does not prove x<>c" false (Contain.contains (q "<=") (q "<>"));
  t "x>=c not equivalent to x>c" false (Contain.equiv (q ">=") (q ">"));
  t "x<=c not equivalent to x<c" false (Contain.equiv (q "<=") (q "<"));
  t "x>c does prove x<>c" true (Contain.contains (q ">") (q "<>"));
  t "x<c does prove x<>c" true (Contain.contains (q "<") (q "<>"))

(* Regression: 21 same-signature occurrences — 21! overflows a naive
   factorial product and used to wrap below the permutation cap,
   sending plan_key into an n! enumeration; the saturating count must
   fall back to the structural key (and return promptly). *)
let test_plan_key_many_way_self_join () =
  let sql =
    Fmt.str "SELECT p0.PName FROM %s"
      (String.concat ", "
         (List.init 21 (fun i -> Fmt.str "Professor p%d" i)))
  in
  let key = Contain.plan_key (algebra sql) in
  Alcotest.(check bool)
    "structural fallback past the cap" true
    (String.length key >= 2 && String.equal (String.sub key 0 2) "S:")

(* --- minimization and analyze units -------------------------------- *)

let fold_sql =
  "SELECT p.PName, p.Rank FROM Professor p, Professor q WHERE p.PName = \
   q.PName AND q.Rank = 'Full'"

let test_minimize_folds () =
  let q', ds = Contain.minimize_query registry (parse fold_sql) in
  Alcotest.(check int) "one source left" 1 (List.length q'.Conjunctive.from);
  Alcotest.(check bool)
    "W0602 reported" true
    (List.exists (fun d -> d.Diagnostic.code = "W0602") ds);
  let _, ds' = Contain.analyze_query registry (parse fold_sql) in
  Alcotest.(check bool)
    "W0604 reported by analyze" true
    (List.exists (fun d -> d.Diagnostic.code = "W0604") ds')

let test_minimize_keeps_distinct_occurrences () =
  (* equated on a non-key attribute: folding would be unsound *)
  let sql =
    "SELECT p.PName, q.PName FROM Professor p, Professor q WHERE p.Rank = \
     q.Rank AND q.Rank = 'Full'"
  in
  let q', ds = Contain.minimize_query registry (parse sql) in
  Alcotest.(check int) "both sources kept" 2 (List.length q'.Conjunctive.from);
  Alcotest.(check bool)
    "no W0602" false
    (List.exists (fun d -> d.Diagnostic.code = "W0602") ds)

let test_unsat_diagnostic () =
  let _, ds =
    Contain.minimize_query registry
      (parse
         "SELECT p.PName FROM Professor p WHERE p.Rank = 'Full' AND p.Rank = \
          'Assistant'")
  in
  Alcotest.(check bool)
    "E0601 reported" true
    (List.exists (fun d -> d.Diagnostic.code = "E0601") ds)

(* --- view subsumption (filter tree) -------------------------------- *)

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_registry_lint () =
  let ds = Viewmatch.registry_lint (Viewmatch.make registry) in
  Alcotest.(check (list string))
    "university registry has no subsumed views" []
    (List.map (fun d -> d.Diagnostic.code) ds);
  let prof = View.find_exn registry "Professor" in
  let dup = { prof with View.rel_name = "Professor2" } in
  let ds' = Viewmatch.registry_lint (Viewmatch.make (registry @ [ dup ])) in
  Alcotest.(check bool)
    "duplicated view flagged W0603" true
    (List.exists
       (fun d ->
         d.Diagnostic.code = "W0603"
         && contains_sub ~sub:"Professor2" d.Diagnostic.message)
       ds')

(* Regression: the same join written as Nalg.Join keys in one view and
   as a Select equality atom over a cross join in another must land in
   the same filter-tree bucket (join keys feed the predicate
   signature), so the semantic check sees the pair and the lint flags
   the duplicate. *)
let test_filter_tree_join_keys_vs_select_atoms () =
  let prof_nav =
    Nalg.follow
      (Nalg.unnest (Nalg.entry "ProfListPage") "ProfListPage.ProfList")
      "ProfListPage.ProfList.ToProf" ~scheme:"ProfPage"
  in
  let dept_nav =
    Nalg.follow
      (Nalg.unnest (Nalg.entry "DeptListPage") "DeptListPage.DeptList")
      "DeptListPage.DeptList.ToDept" ~scheme:"DeptPage"
  in
  let bindings =
    [
      ("PName", "ProfPage.PName");
      ("DName", "ProfPage.DName");
      ("Address", "DeptPage.Address");
    ]
  in
  let mk name nav_expr =
    View.relation ~name ~attrs:[ "PName"; "DName"; "Address" ]
      ~navigations:[ View.navigation ~bindings nav_expr ] ()
  in
  let join_view =
    mk "ProfDeptJoin"
      (Nalg.join [ ("ProfPage.DName", "DeptPage.DName") ] prof_nav dept_nav)
  in
  let select_view =
    mk "ProfDeptSel"
      (Nalg.select
         [ Pred.eq_attrs "ProfPage.DName" "DeptPage.DName" ]
         (Nalg.join [] prof_nav dept_nav))
  in
  let t = Viewmatch.make [ join_view; select_view ] in
  Alcotest.(check bool)
    "select-atom view sees the join-key candidate" true
    (List.exists
       (fun (r : View.relation) -> String.equal r.View.rel_name "ProfDeptJoin")
       (Viewmatch.candidates t select_view));
  Alcotest.(check bool)
    "equivalent pair flagged W0603" true
    (List.exists
       (fun d -> d.Diagnostic.code = "W0603")
       (Viewmatch.registry_lint t))

(* --- QCheck: random university queries ----------------------------- *)

(* Random connected queries over the university view, extended with
   duplicate-FROM-occurrence shapes that exercise key folding. *)
let query_gen =
  let open QCheck.Gen in
  let dup st =
    let rel, key, sel_attr, vals =
      List.nth
        [
          ("Professor", "PName", "Rank", [ "Full"; "Associate"; "Assistant" ]);
          ("Course", "CName", "Session", [ "Fall"; "Winter"; "Spring" ]);
        ]
        (int_bound 1 st)
    in
    let v = List.nth vals (int_bound (List.length vals - 1) st) in
    let triple = int_bound 3 st = 0 in
    if triple then
      Fmt.str
        "SELECT p.%s FROM %s p, %s q, %s r WHERE p.%s = q.%s AND q.%s = r.%s \
         AND q.%s = '%s'"
        key rel rel rel key key key key sel_attr v
    else
      Fmt.str "SELECT p.%s, p.%s FROM %s p, %s q WHERE p.%s = q.%s AND q.%s = '%s'"
        key sel_attr rel rel key key sel_attr v
  in
  let join st =
    (* (base query, how to attach an optional extra selection) *)
    let shapes =
      [
        ("SELECT p.PName FROM Professor p", " WHERE p.Rank = 'Full'");
        ( "SELECT p.PName, d.DName FROM Professor p, ProfDept d WHERE p.PName \
           = d.PName",
          " AND p.Rank = 'Full'" );
        ( "SELECT c.CName, i.PName FROM Course c, CourseInstructor i WHERE \
           c.CName = i.CName",
          " AND c.Session = 'Fall'" );
        ( "SELECT p.PName, d.DName FROM Professor p, ProfDept d, Dept e WHERE \
           p.PName = d.PName AND d.DName = e.DName",
          " AND p.Rank = 'Full'" );
      ]
    in
    let base, extra = List.nth shapes (int_bound (List.length shapes - 1) st) in
    if bool st then base ^ extra else base
  in
  fun st -> if int_bound 2 st = 0 then join st else dup st

let query_arb = QCheck.make ~print:Fun.id query_gen

let plan_pair sql =
  let q = parse sql in
  let st = Lazy.force stats in
  let raw = Planner.enumerate ~minimize:false schema st registry q in
  let minimized = Planner.enumerate schema st registry q in
  (raw, minimized)

let prop_minimize_preserves_rows =
  QCheck.Test.make ~name:"minimized query computes identical rows" ~count:40
    query_arb (fun sql ->
      let raw, minimized = plan_pair sql in
      let source = Eval.instance_source (Lazy.force instance) in
      let run (o : Planner.outcome) =
        rows_of
          (Planner.rename_output o (Eval.eval schema source o.Planner.best.Planner.expr))
      in
      run raw = run minimized)

(* Folding a duplicate occurrence lets the planner push its selection
   onto the one remaining navigation, so the minimized plan may
   legitimately read FEWER pages; it must never read a page the raw
   plan did not, and with nothing folded the sets must be identical. *)
let subset xs ys = List.for_all (fun x -> List.mem x ys) xs

let folded (minimized : Planner.outcome) =
  List.exists
    (fun d -> d.Diagnostic.code = "W0602")
    minimized.Planner.diagnostics

let prop_minimize_preserves_gets =
  QCheck.Test.make ~name:"minimized query reads no extra distinct pages"
    ~count:12 query_arb (fun sql ->
      let raw, minimized = plan_pair sql in
      let run (o : Planner.outcome) =
        let u = Lazy.force uni in
        let http = Websim.Http.connect (Sitegen.University.site u) in
        let src, urls = logged_source schema http in
        let rel =
          Planner.rename_output o (Eval.eval schema src o.Planner.best.Planner.expr)
        in
        (rows_of rel, urls ())
      in
      let rows_raw, gets_raw = run raw in
      let rows_min, gets_min = run minimized in
      rows_raw = rows_min
      && subset gets_min gets_raw
      && (folded minimized || gets_min = gets_raw))

let prop_contains_reflexive =
  QCheck.Test.make ~name:"containment is reflexive on candidate plans" ~count:30
    query_arb (fun sql ->
      let _, minimized = plan_pair sql in
      List.for_all
        (fun (p : Planner.plan) ->
          match Contain.of_expr p.Planner.expr with
          | None -> true (* outside the fragment: no claim *)
          | Some _ -> Contain.contains p.Planner.expr p.Planner.expr)
        minimized.Planner.candidates)

let prop_contains_transitive =
  QCheck.Test.make ~name:"containment is transitive on candidate plans"
    ~count:20 query_arb (fun sql ->
      let _, minimized = plan_pair sql in
      let plans =
        List.filteri (fun i _ -> i < 5) minimized.Planner.candidates
        |> List.map (fun (p : Planner.plan) -> p.Planner.expr)
      in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              List.for_all
                (fun c ->
                  (not (Contain.contains a b && Contain.contains b c))
                  || Contain.contains a c)
                plans)
            plans)
        plans)

let prop_restriction_contained =
  QCheck.Test.make ~name:"adding a selection yields a contained query" ~count:30
    query_arb (fun sql ->
      let q = parse sql in
      match q.Conjunctive.from with
      | { Conjunctive.alias; rel } :: _ ->
        let attr =
          match rel with
          | "Professor" -> Some "Rank"
          | "Course" -> Some "Session"
          | _ -> None
        in
        (match attr with
        | None -> true
        | Some a ->
          let restricted =
            {
              q with
              Conjunctive.where =
                Pred.eq_const (alias ^ "." ^ a) (Adm.Value.text "Full")
                :: q.Conjunctive.where;
            }
          in
          Contain.contains
            (Conjunctive.to_algebra restricted)
            (Conjunctive.to_algebra q))
      | [] -> true)

(* --- seeded three-site equivalence --------------------------------- *)

let seeds = [ 7; 21; 42 ]

let check_site name site_schema view ~build_site ~queries seed =
  let site = build_site seed in
  let http = Websim.Http.connect site in
  let inst = Websim.Crawler.crawl site_schema http in
  let st = Stats.of_instance inst in
  List.iter
    (fun sql ->
      let q = Sql_parser.parse view sql in
      let raw = Planner.enumerate ~minimize:false site_schema st view q in
      let minimized = Planner.enumerate site_schema st view q in
      let run (o : Planner.outcome) =
        let http = Websim.Http.connect site in
        let src, urls = logged_source site_schema http in
        let rel =
          Planner.rename_output o
            (Eval.eval site_schema src o.Planner.best.Planner.expr)
        in
        (rows_of rel, urls ())
      in
      let rows_raw, gets_raw = run raw in
      let rows_min, gets_min = run minimized in
      Alcotest.(check (list (list string)))
        (Fmt.str "%s seed %d rows: %s" name seed sql)
        rows_raw rows_min;
      let fold_fired =
        List.exists
          (fun d -> d.Diagnostic.code = "W0602")
          minimized.Planner.diagnostics
      in
      if fold_fired then
        Alcotest.(check bool)
          (Fmt.str "%s seed %d GET subset: %s" name seed sql)
          true
          (List.for_all (fun u -> List.mem u gets_raw) gets_min)
      else
        Alcotest.(check (list string))
          (Fmt.str "%s seed %d GET set: %s" name seed sql)
          gets_raw gets_min)
    queries

let test_seeded_university () =
  List.iter
    (check_site "university" schema registry
       ~build_site:(fun seed ->
         Sitegen.University.site
           (Sitegen.University.build
              ~config:{ Sitegen.University.default_config with seed }
              ()))
       ~queries:
         [
           fold_sql;
           "SELECT p.PName, d.DName FROM Professor p, ProfDept d WHERE p.PName \
            = d.PName AND d.DName = 'Computer Science'";
           "SELECT c.CName FROM Course c WHERE c.Session = 'Fall'";
         ])
    seeds

let test_seeded_catalog () =
  List.iter
    (check_site "catalog" Sitegen.Catalog.schema Sitegen.Catalog.view
       ~build_site:(fun seed ->
         Sitegen.Catalog.site
           (Sitegen.Catalog.build
              ~config:{ Sitegen.Catalog.default_config with seed }
              ()))
       ~queries:
         [
           "SELECT p.PName, p.Price FROM Product p, Product q WHERE p.PName = \
            q.PName AND q.Price > 250";
           "SELECT p.PName, c.CatName FROM Product p, Category c WHERE \
            p.Category = c.CatName";
         ])
    seeds

let test_seeded_bibliography () =
  let view = View.auto_registry Sitegen.Bibliography.schema in
  List.iter
    (check_site "bibliography" Sitegen.Bibliography.schema view
       ~build_site:(fun seed ->
         Sitegen.Bibliography.site
           (Sitegen.Bibliography.build
              ~config:{ Sitegen.Bibliography.default_config with seed }
              ()))
       ~queries:
         [
           "SELECT e.CName, e.Year FROM EditionPage e";
           "SELECT a.AName FROM AuthorPage a, AuthorPage b WHERE a.AName = \
            b.AName";
         ])
    seeds

let suite =
  ( "contain",
    [
      Alcotest.test_case "unsat_pred verdicts" `Quick test_unsat_pred;
      Alcotest.test_case "unsat_expr verdicts" `Quick test_unsat_expr;
      Alcotest.test_case "containment under refinement" `Quick
        test_contains_refinement;
      Alcotest.test_case "equivalence under permutation" `Quick
        test_equiv_permutation;
      Alcotest.test_case "closed bound is not an exclusion" `Quick
        test_closed_bound_is_not_exclusion;
      Alcotest.test_case "plan_key caps many-way self-joins" `Quick
        test_plan_key_many_way_self_join;
      Alcotest.test_case "minimization folds key-equated duplicates" `Quick
        test_minimize_folds;
      Alcotest.test_case "minimization keeps non-key duplicates" `Quick
        test_minimize_keeps_distinct_occurrences;
      Alcotest.test_case "unsatisfiable query reported" `Quick
        test_unsat_diagnostic;
      Alcotest.test_case "registry subsumption lint" `Quick test_registry_lint;
      Alcotest.test_case "filter tree buckets join keys with select atoms"
        `Quick test_filter_tree_join_keys_vs_select_atoms;
      QCheck_alcotest.to_alcotest prop_minimize_preserves_rows;
      QCheck_alcotest.to_alcotest prop_minimize_preserves_gets;
      QCheck_alcotest.to_alcotest prop_contains_reflexive;
      QCheck_alcotest.to_alcotest prop_contains_transitive;
      QCheck_alcotest.to_alcotest prop_restriction_contained;
      Alcotest.test_case "seeded university minimize-equivalence (7/21/42)"
        `Slow test_seeded_university;
      Alcotest.test_case "seeded catalog minimize-equivalence (7/21/42)" `Slow
        test_seeded_catalog;
      Alcotest.test_case "seeded bibliography minimize-equivalence (7/21/42)"
        `Slow test_seeded_bibliography;
    ] )
