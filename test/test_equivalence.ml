(* The optimizer's master invariant, checked on randomized queries:
   every candidate plan Algorithm 1 enumerates for a conjunctive query
   computes exactly the same relation (modulo the positional output
   renaming), and the plan the cost model ranks first never downloads
   more pages than the plan it ranks last. *)

open Webviews

let schema = Sitegen.University.schema
let registry = Sitegen.University.view

let uni = lazy (Sitegen.University.build ())

let instance =
  lazy
    (let u = Lazy.force uni in
     let http = Websim.Http.connect (Sitegen.University.site u) in
     Websim.Crawler.crawl schema http)

let stats = lazy (Stats.of_instance (Lazy.force instance))

(* --- a small generator of valid conjunctive queries ---------------- *)

(* join graph of the university view: which relations can be equi-
   joined on which attributes *)
let joinable =
  [
    (("Professor", "PName"), ("ProfDept", "PName"));
    (("Professor", "PName"), ("CourseInstructor", "PName"));
    (("Course", "CName"), ("CourseInstructor", "CName"));
    (("ProfDept", "DName"), ("Dept", "DName"));
  ]

let selections =
  [
    ("Professor", "Rank", [ "Full"; "Associate"; "Assistant" ]);
    ("Course", "Session", [ "Fall"; "Winter"; "Spring" ]);
    ("Course", "Type", [ "Graduate"; "Undergraduate" ]);
    ("ProfDept", "DName", [ "Computer Science"; "Mathematics"; "Physics" ]);
    ("Dept", "DName", [ "Computer Science"; "Mathematics" ]);
  ]

let projectable =
  [
    ("Professor", [ "PName"; "Rank"; "Email" ]);
    ("Course", [ "CName"; "Session"; "Type" ]);
    ("CourseInstructor", [ "CName"; "PName" ]);
    ("ProfDept", [ "PName"; "DName" ]);
    ("Dept", [ "DName"; "Address" ]);
  ]

(* Build a random connected query: start from one relation, repeatedly
   attach a joinable relation, add 0-2 selections, project 1-2
   attributes of relations in scope. *)
let query_gen =
  let open QCheck.Gen in
  let rec grow rels joins fuel st =
    if fuel = 0 then (rels, joins)
    else
      let candidates =
        List.filter_map
          (fun (((r1, a1), (r2, a2)) as _edge) ->
            if List.mem r1 rels && not (List.mem r2 rels) then Some (r2, (r1, a1, r2, a2))
            else if List.mem r2 rels && not (List.mem r1 rels) then Some (r1, (r1, a1, r2, a2))
            else None)
          joinable
      in
      match candidates with
      | [] -> (rels, joins)
      | _ ->
        let n = int_bound (List.length candidates - 1) st in
        let rel, edge = List.nth candidates n in
        grow (rel :: rels) (edge :: joins) (fuel - 1) st
  in
  let gen st =
    let seed_rel =
      List.nth [ "Professor"; "Course"; "Dept"; "ProfDept" ] (int_bound 3 st)
    in
    let fuel = int_bound 2 st in
    let rels, joins = grow [ seed_rel ] [] fuel st in
    let wanted_selections = int_bound 2 st in
    let available_selections =
      List.filter (fun (r, _, _) -> List.mem r rels) selections
    in
    let sels =
      List.filteri (fun i _ -> i < wanted_selections) available_selections
      |> List.map (fun (r, a, vs) -> (r, a, List.nth vs (int_bound (List.length vs - 1) st)))
    in
    let outputs =
      List.concat_map
        (fun r ->
          match List.assoc_opt r projectable with
          | Some (a :: _) -> [ r ^ "." ^ a ]
          | _ -> [])
        rels
    in
    let where =
      List.map (fun (r1, a1, r2, a2) -> Fmt.str "%s.%s = %s.%s" r1 a1 r2 a2) joins
      @ List.map (fun (r, a, v) -> Fmt.str "%s.%s = '%s'" r a v) sels
    in
    Fmt.str "SELECT %s FROM %s%s"
      (String.concat ", " outputs)
      (String.concat ", " rels)
      (match where with [] -> "" | w -> " WHERE " ^ String.concat " AND " w)
  in
  gen

let query_arb = QCheck.make ~print:Fun.id query_gen

let rows_of rel =
  Adm.Relation.rows rel
  |> List.map (fun t -> List.map (fun (_, v) -> Adm.Value.to_string v) t)
  |> List.sort compare

let prop_all_candidates_agree =
  QCheck.Test.make ~name:"all candidate plans compute the same relation" ~count:60
    query_arb (fun sql ->
      let outcome = Planner.plan_sql schema (Lazy.force stats) registry sql in
      let source = Eval.instance_source (Lazy.force instance) in
      let results =
        List.map
          (fun (p : Planner.plan) ->
            rows_of (Planner.rename_output outcome (Eval.eval schema source p.Planner.expr)))
          outcome.Planner.candidates
      in
      match results with
      | [] -> false
      | first :: rest -> List.for_all (fun r -> r = first) rest)

let prop_best_not_worse_than_worst =
  QCheck.Test.make ~name:"cheapest plan downloads no more pages than costliest"
    ~count:25 query_arb (fun sql ->
      let outcome = Planner.plan_sql schema (Lazy.force stats) registry sql in
      let measure (p : Planner.plan) =
        let u = Lazy.force uni in
        let http = Websim.Http.connect (Sitegen.University.site u) in
        let source = Eval.live_source schema http in
        let _ = Eval.eval schema source p.Planner.expr in
        (Websim.Http.stats http).Websim.Http.gets
      in
      match outcome.Planner.candidates with
      | [] -> false
      | [ _ ] -> true
      | best :: rest ->
        let worst = List.nth rest (List.length rest - 1) in
        measure best <= measure worst)

let prop_plans_are_computable =
  QCheck.Test.make ~name:"every candidate is computable" ~count:60 query_arb
    (fun sql ->
      let outcome = Planner.plan_sql schema (Lazy.force stats) registry sql in
      List.for_all
        (fun (p : Planner.plan) -> Nalg.is_computable p.Planner.expr)
        outcome.Planner.candidates)

let prop_plans_statically_well_formed =
  QCheck.Test.make ~name:"every candidate passes the static checker" ~count:60
    query_arb (fun sql ->
      let outcome = Planner.plan_sql schema (Lazy.force stats) registry sql in
      List.for_all
        (fun (p : Planner.plan) ->
          not (Diagnostic.has_errors (Typecheck.check schema p.Planner.expr)))
        outcome.Planner.candidates)

let prop_matview_agrees_with_live =
  QCheck.Test.make ~name:"materialized view answers = live answers" ~count:15
    query_arb (fun sql ->
      (* fresh site per sample: matview mutates statuses *)
      let u = Sitegen.University.build () in
      let http = Websim.Http.connect (Sitegen.University.site u) in
      let inst = Websim.Crawler.crawl schema http in
      let stats = Stats.of_instance inst in
      let outcome = Planner.plan_sql schema stats registry sql in
      let plan = outcome.Planner.best.Planner.expr in
      let live = rows_of (Eval.eval schema (Eval.instance_source inst) plan) in
      let mv = Matview.materialize schema http in
      let mat = rows_of (Matview.query mv plan) in
      live = mat)

let suite =
  ( "equivalence",
    [
      QCheck_alcotest.to_alcotest prop_all_candidates_agree;
      QCheck_alcotest.to_alcotest prop_best_not_worse_than_worst;
      QCheck_alcotest.to_alcotest prop_plans_are_computable;
      QCheck_alcotest.to_alcotest prop_plans_statically_well_formed;
      QCheck_alcotest.to_alcotest prop_matview_agrees_with_live;
    ] )
