(* The physical plan layer's master invariants, checked differentially
   against the legacy relation-at-a-time evaluator (kept in Eval as the
   oracle): the streaming executor computes exactly the same relation
   on every planner candidate over every generated site, and on a
   perfect network it issues exactly the same distinct page accesses —
   the paper's cost ledger is untouched by the pipelined runtime. *)

open Webviews

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool

let schema = Sitegen.University.schema
let registry = Sitegen.University.view

let uni = lazy (Sitegen.University.build ())

let instance =
  lazy
    (let u = Lazy.force uni in
     let http = Websim.Http.connect (Sitegen.University.site u) in
     Websim.Crawler.crawl schema http)

let stats = lazy (Stats.of_instance (Lazy.force instance))

let bib = lazy (Sitegen.Bibliography.build ())

let bib_instance =
  lazy
    (let b = Lazy.force bib in
     let http = Websim.Http.connect (Sitegen.Bibliography.site b) in
     Websim.Crawler.crawl Sitegen.Bibliography.schema http)

let bib_stats = lazy (Stats.of_instance (Lazy.force bib_instance))

let catalog = lazy (Sitegen.Catalog.build ())

let catalog_instance =
  lazy
    (let c = Lazy.force catalog in
     let http = Websim.Http.connect (Sitegen.Catalog.site c) in
     Websim.Crawler.crawl Sitegen.Catalog.schema http)

let catalog_stats = lazy (Stats.of_instance (Lazy.force catalog_instance))

(* Run an expression through the physical layer: lower with cost
   annotations, execute with pull-based cursors. *)
let exec_eval schema stats source e =
  Exec.run schema source (Cost.lower ~window:source.Eval.window schema stats e)

(* Streaming and legacy runs of the same plan over fresh connections;
   on the perfect simulated network both must hit the same pages. *)
let net_profile run site schema e =
  let http = Websim.Http.connect site in
  let source = Eval.live_source schema http in
  let r = run source e in
  let s = Websim.Http.stats http in
  (r, s.Websim.Http.gets, s.Websim.Http.heads, s.Websim.Http.bytes)

let check_page_identity name site schema stats e =
  let r_stream, g1, h1, b1 = net_profile (exec_eval schema stats) site schema e in
  let r_legacy, g2, h2, b2 = net_profile (Eval.eval_legacy schema) site schema e in
  Alcotest.(check bool) (name ^ ": same relation") true
    (Adm.Relation.equal r_stream r_legacy);
  Alcotest.(check (triple int int int)) (name ^ ": same GET/HEAD/byte counters")
    (g2, h2, b2) (g1, h1, b1)

(* --- random candidates over the university site -------------------- *)

let prop_exec_matches_legacy =
  QCheck.Test.make ~name:"streaming executor = legacy evaluator on all candidates"
    ~count:40 Test_equivalence.query_arb (fun sql ->
      let outcome = Planner.plan_sql schema (Lazy.force stats) registry sql in
      let source = Eval.instance_source (Lazy.force instance) in
      List.for_all
        (fun (p : Planner.plan) ->
          Adm.Relation.equal
            (exec_eval schema (Lazy.force stats) source p.Planner.expr)
            (Eval.eval_legacy schema source p.Planner.expr))
        outcome.Planner.candidates)

let prop_exec_same_pages =
  QCheck.Test.make ~name:"streaming follow hits the same pages as legacy"
    ~count:15 Test_equivalence.query_arb (fun sql ->
      let outcome = Planner.plan_sql schema (Lazy.force stats) registry sql in
      let e = outcome.Planner.best.Planner.expr in
      let site = Sitegen.University.site (Lazy.force uni) in
      let _, g1, h1, b1 = net_profile (exec_eval schema (Lazy.force stats)) site schema e in
      let _, g2, h2, b2 = net_profile (Eval.eval_legacy schema) site schema e in
      (g1, h1, b1) = (g2, h2, b2))

let prop_lowered_plans_well_typed =
  QCheck.Test.make ~name:"every lowered candidate passes the static checker"
    ~count:40 Test_equivalence.query_arb (fun sql ->
      let outcome = Planner.plan_sql schema (Lazy.force stats) registry sql in
      List.for_all
        (fun (p : Planner.plan) ->
          let plan = Cost.lower schema (Lazy.force stats) p.Planner.expr in
          not
            (Diagnostic.has_errors
               (Typecheck.check_plan schema ~parent:p.Planner.expr plan)))
        outcome.Planner.candidates)

(* --- deterministic seeds across the three sites -------------------- *)

let seeds = [ 7; 21; 42 ]

let test_seeded_university_candidates () =
  List.iter
    (fun seed ->
      let st = Random.State.make [| seed |] in
      for i = 1 to 5 do
        let sql = Test_equivalence.query_gen st in
        let outcome = Planner.plan_sql schema (Lazy.force stats) registry sql in
        let source = Eval.instance_source (Lazy.force instance) in
        List.iteri
          (fun j (p : Planner.plan) ->
            check bool_t (Fmt.str "uni seed %d query %d candidate %d" seed i j) true
              (Adm.Relation.equal
                 (exec_eval schema (Lazy.force stats) source p.Planner.expr)
                 (Eval.eval_legacy schema source p.Planner.expr)))
          outcome.Planner.candidates;
        check_page_identity
          (Fmt.str "uni seed %d query %d best" seed i)
          (Sitegen.University.site (Lazy.force uni))
          schema (Lazy.force stats) outcome.Planner.best.Planner.expr
      done)
    seeds

let test_seeded_catalog_candidates () =
  let c = Lazy.force catalog in
  let products = Sitegen.Catalog.products c in
  List.iter
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let p = List.nth products (Random.State.int st (List.length products)) in
      let queries =
        [
          Fmt.str "SELECT p.PName, p.Price FROM Product p WHERE p.Brand = '%s'"
            p.Sitegen.Catalog.brand;
          Fmt.str "SELECT p.PName FROM Product p WHERE p.Category = '%s' AND p.Price < %d"
            p.Sitegen.Catalog.category
            (p.Sitegen.Catalog.price + 1);
        ]
      in
      List.iteri
        (fun i sql ->
          let outcome =
            Planner.plan_sql Sitegen.Catalog.schema (Lazy.force catalog_stats)
              Sitegen.Catalog.view sql
          in
          let source = Eval.instance_source (Lazy.force catalog_instance) in
          List.iteri
            (fun j (pl : Planner.plan) ->
              check bool_t
                (Fmt.str "catalog seed %d query %d candidate %d" seed i j)
                true
                (Adm.Relation.equal
                   (exec_eval Sitegen.Catalog.schema (Lazy.force catalog_stats)
                      source pl.Planner.expr)
                   (Eval.eval_legacy Sitegen.Catalog.schema source pl.Planner.expr)))
            outcome.Planner.candidates;
          check_page_identity
            (Fmt.str "catalog seed %d query %d best" seed i)
            (Sitegen.Catalog.site c) Sitegen.Catalog.schema
            (Lazy.force catalog_stats) outcome.Planner.best.Planner.expr)
        queries)
    seeds

let test_bibliography_paths () =
  let b = Lazy.force bib in
  let paths =
    [
      ("path1 all conferences", Sitegen.Bibliography.path1_all_conferences ());
      ("path2 db conferences", Sitegen.Bibliography.path2_db_conferences ());
      ("path3 direct link", Sitegen.Bibliography.path3_direct_link ());
      ("path4 via authors", Sitegen.Bibliography.path4_via_authors ());
    ]
  in
  let source = Eval.instance_source (Lazy.force bib_instance) in
  List.iter
    (fun (name, e) ->
      check bool_t (name ^ " relation") true
        (Adm.Relation.equal
           (exec_eval Sitegen.Bibliography.schema (Lazy.force bib_stats) source e)
           (Eval.eval_legacy Sitegen.Bibliography.schema source e));
      check_page_identity name (Sitegen.Bibliography.site b)
        Sitegen.Bibliography.schema (Lazy.force bib_stats) e)
    paths

(* --- pinned page-access counters (Example 7.2 literal plans) ------- *)

(* The same literal figure-4 plans the benchmark measures. Pinning the
   absolute GET counts (not just stream = legacy) makes a silent
   regression of the incremental URL dedup — fetching a link twice, or
   prefetching pages the plan never consumes — fail loudly. *)
let join_plan_72 () =
  let cs_prof_pointers =
    Nalg.unnest
      (Nalg.follow
         (Nalg.select
            [ Pred.eq_const "DeptListPage.DeptList.DName"
                (Adm.Value.text "Computer Science") ]
            (Nalg.unnest (Nalg.entry "DeptListPage") "DeptListPage.DeptList"))
         "DeptListPage.DeptList.ToDept" ~scheme:"DeptPage")
      "DeptPage.ProfList"
  in
  let grad_instructor_pointers =
    Nalg.select
      [ Pred.eq_const "CoursePage.Type" (Adm.Value.text "Graduate") ]
      (Nalg.follow
         (Nalg.unnest
            (Nalg.follow
               (Nalg.unnest (Nalg.entry "SessionListPage") "SessionListPage.SesList")
               "SessionListPage.SesList.ToSes" ~scheme:"SessionPage")
            "SessionPage.CourseList")
         "SessionPage.CourseList.ToCourse" ~scheme:"CoursePage")
  in
  Nalg.project
    [ "ProfPage.PName"; "ProfPage.Email" ]
    (Nalg.follow
       (Nalg.join
          [ ("DeptPage.ProfList.ToProf", "CoursePage.ToProf") ]
          cs_prof_pointers grad_instructor_pointers)
       "DeptPage.ProfList.ToProf" ~scheme:"ProfPage")

let chase_plan_72 () =
  Nalg.project
    [ "ProfPage.PName"; "ProfPage.Email" ]
    (Nalg.select
       [ Pred.eq_const "CoursePage.Type" (Adm.Value.text "Graduate") ]
       (Nalg.follow
          (Nalg.unnest
             (Nalg.follow
                (Nalg.unnest
                   (Nalg.follow
                      (Nalg.select
                         [ Pred.eq_const "DeptListPage.DeptList.DName"
                             (Adm.Value.text "Computer Science") ]
                         (Nalg.unnest (Nalg.entry "DeptListPage")
                            "DeptListPage.DeptList"))
                      "DeptListPage.DeptList.ToDept" ~scheme:"DeptPage")
                   "DeptPage.ProfList")
                "DeptPage.ProfList.ToProf" ~scheme:"ProfPage")
             "ProfPage.CourseList")
          "ProfPage.CourseList.ToCourse" ~scheme:"CoursePage"))

let test_pinned_literal_72_counters () =
  let site = Sitegen.University.site (Lazy.force uni) in
  let gets_of e =
    let _, g, _, _ = net_profile (exec_eval schema (Lazy.force stats)) site schema e in
    g
  in
  let join_gets = gets_of (join_plan_72 ()) in
  let chase_gets = gets_of (chase_plan_72 ()) in
  check int_t "pointer-join distinct GETs (default site)" 58 join_gets;
  check int_t "pointer-chase distinct GETs (default site)" 15 chase_gets;
  check_page_identity "literal pointer-join" site schema (Lazy.force stats)
    (join_plan_72 ());
  check_page_identity "literal pointer-chase" site schema (Lazy.force stats)
    (chase_plan_72 ())

(* --- early exit (LIMIT) ------------------------------------------- *)

let prof_names_plan () =
  Dsl.(
    start "ProfListPage" |> dive "ProfList" |> follow "ToProf" ~scheme:"ProfPage"
    |> keep [ "PName" ] |> finish)

let test_limit_stops_fetching () =
  let site = Sitegen.University.site (Lazy.force uni) in
  let gets limit =
    let http = Websim.Http.connect site in
    let source = Eval.live_source schema http in
    let r = Eval.eval ?limit schema source (prof_names_plan ()) in
    (Adm.Relation.cardinality r, (Websim.Http.stats http).Websim.Http.gets)
  in
  let full_rows, full_gets = gets None in
  let one_rows, one_gets = gets (Some 1) in
  check int_t "one row under LIMIT 1" 1 one_rows;
  check bool_t "full run visits every professor" true (full_gets > 10);
  (* the entry page plus at most one prefetch window, not all 20 profs *)
  check bool_t
    (Fmt.str "LIMIT 1 fetches strictly fewer pages (%d < %d)" one_gets full_gets)
    true
    (one_gets < full_gets);
  check bool_t "LIMIT 1 stays within one prefetch window" true
    (one_gets <= 1 + Websim.Fetcher.default_config.Websim.Fetcher.window);
  ignore full_rows

let test_limit_truncates_exact () =
  let source = Eval.instance_source (Lazy.force instance) in
  let e = prof_names_plan () in
  let full = Eval.eval schema source e in
  let limited = Eval.eval ~limit:3 schema source e in
  check int_t "exactly 3 rows" 3 (Adm.Relation.cardinality limited);
  let member row = List.mem row (Adm.Relation.rows full) in
  check bool_t "limited rows come from the full answer" true
    (List.for_all member (Adm.Relation.rows limited))

(* --- executor metrics --------------------------------------------- *)

let test_metrics_and_early_exit_flag () =
  let source = Eval.instance_source (Lazy.force instance) in
  let plan = Cost.lower ~window:source.Eval.window schema (Lazy.force stats)
      (prof_names_plan ())
  in
  let full, m_full = Exec.run_metrics schema source plan in
  check bool_t "full pull exhausts the pipeline" true m_full.Exec.exhausted;
  check int_t "result_rows matches relation" (Adm.Relation.cardinality full)
    m_full.Exec.result_rows;
  check bool_t "streaming residency below materialized size" true
    (Exec.peak_resident_rows m_full <= Adm.Relation.cardinality full);
  let _, m_lim = Exec.run_metrics ~limit:1 schema source plan in
  check bool_t "LIMIT 1 stops before exhaustion" true (not m_lim.Exec.exhausted);
  check int_t "LIMIT 1 keeps one row" 1 m_lim.Exec.result_rows

(* --- resumable step API ------------------------------------------- *)

let test_step_api_resumable () =
  let source = Eval.instance_source (Lazy.force instance) in
  let plan = Cost.lower ~window:source.Eval.window schema (Lazy.force stats)
      (prof_names_plan ())
  in
  let full, m_full = Exec.run_metrics schema source plan in
  (* stepping to completion = running to completion *)
  let r = Exec.start schema source plan in
  check bool_t "not finished before the first step" false (Exec.finished r);
  let steps = ref 0 in
  let rec drive () =
    match Exec.step r with
    | `Pulled n ->
      incr steps;
      check bool_t "batches are non-empty" true (n > 0);
      (* partial snapshots are prefixes of the final answer *)
      check bool_t "buffered rows grow monotonically" true
        (Exec.buffered_rows r
        = Adm.Relation.cardinality (Exec.snapshot r));
      drive ()
    | `Done -> ()
  in
  drive ();
  check bool_t "finished after Done" true (Exec.finished r);
  check bool_t "stepped result = run result" true
    (Adm.Relation.equal full (Exec.snapshot r));
  check bool_t "at least one pulling step happened" true (!steps >= 1);
  check bool_t "exhausted flag set" true (Exec.metrics_of r).Exec.exhausted;
  check int_t "result_rows as in the one-shot run" m_full.Exec.result_rows
    (Exec.metrics_of r).Exec.result_rows;
  (* `Done is sticky *)
  check bool_t "step after Done stays Done" true (Exec.step r = `Done);
  (* a limit stops the stepping early and truncates the snapshot *)
  let rl = Exec.start ~limit:2 schema source plan in
  let rec drive_l () = match Exec.step rl with `Pulled _ -> drive_l () | `Done -> () in
  drive_l ();
  check int_t "limit truncates the snapshot" 2
    (Adm.Relation.cardinality (Exec.snapshot rl));
  check bool_t "limit leaves the pipeline unexhausted" false
    (Exec.metrics_of rl).Exec.exhausted

(* --- build-side selection ----------------------------------------- *)

let test_build_side_follows_estimates () =
  let plan = Cost.lower schema (Lazy.force stats) (join_plan_72 ()) in
  let joins =
    Physplan.fold
      (fun acc (o : Physplan.op) ->
        match o.Physplan.node with
        | Physplan.Hash_join { left; right; build_left; _ } ->
          (left.Physplan.est, right.Physplan.est, build_left) :: acc
        | Physplan.Scan _ | Physplan.View_scan _ | Physplan.Filter _
        | Physplan.Project _ | Physplan.Stream_unnest _
        | Physplan.Follow_links _ | Physplan.Call_fetch _ -> acc)
      [] plan
  in
  check bool_t "the pointer-join plan has a hash join" true (joins <> []);
  List.iter
    (fun (l, r, build_left) ->
      match (l, r) with
      | Some le, Some re ->
        check bool_t "build side is the smaller estimated input"
          (le.Physplan.est_rows < re.Physplan.est_rows)
          build_left
      | _ -> Alcotest.fail "cost-lowered join children carry estimates")
    joins

let suite =
  ( "exec",
    [
      QCheck_alcotest.to_alcotest prop_exec_matches_legacy;
      QCheck_alcotest.to_alcotest prop_exec_same_pages;
      QCheck_alcotest.to_alcotest prop_lowered_plans_well_typed;
      Alcotest.test_case "seeded university candidates (7/21/42)" `Slow
        test_seeded_university_candidates;
      Alcotest.test_case "seeded catalog candidates (7/21/42)" `Slow
        test_seeded_catalog_candidates;
      Alcotest.test_case "bibliography intro paths" `Slow test_bibliography_paths;
      Alcotest.test_case "pinned literal 7.2 page counters" `Quick
        test_pinned_literal_72_counters;
      Alcotest.test_case "LIMIT stops fetching early" `Quick test_limit_stops_fetching;
      Alcotest.test_case "LIMIT truncates exactly" `Quick test_limit_truncates_exact;
      Alcotest.test_case "resumable step API" `Quick test_step_api_resumable;
      Alcotest.test_case "metrics and early-exit flag" `Quick
        test_metrics_and_early_exit_flag;
      Alcotest.test_case "join build side follows estimates" `Quick
        test_build_side_follows_estimates;
    ] )
