(* Tests for the extension modules: the Ulixes-style DSL, constraint
   discovery, the byte-based cost refinement, staleness tolerance for
   materialized views, and the catalog site. *)

open Webviews

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* ------------------------------------------------------------------ *)
(* DSL                                                                 *)
(* ------------------------------------------------------------------ *)

let uni_schema = Sitegen.University.schema

let uni_instance =
  lazy
    (let uni = Sitegen.University.build () in
     let http = Websim.Http.connect (Sitegen.University.site uni) in
     Websim.Crawler.crawl uni_schema http)

let test_dsl_matches_raw_nalg () =
  let via_dsl =
    Dsl.(
      start "ProfListPage"
      |> dive "ProfList"
      |> follow "ToProf" ~scheme:"ProfPage"
      |> where_eq "Rank" (Adm.Value.text "Full")
      |> keep [ "PName" ]
      |> finish)
  in
  let raw =
    Nalg.project [ "ProfPage.PName" ]
      (Nalg.select
         [ Pred.eq_const "ProfPage.Rank" (Adm.Value.text "Full") ]
         (Nalg.follow
            (Nalg.unnest (Nalg.entry "ProfListPage") "ProfListPage.ProfList")
            "ProfListPage.ProfList.ToProf" ~scheme:"ProfPage"))
  in
  check bool_t "structurally equal" true (Nalg.equal via_dsl raw)

let test_dsl_cursor_tracking () =
  let nav = Dsl.(start "SessionListPage" |> dive "SesList") in
  check Alcotest.string "cursor after dive" "SessionListPage.SesList" (Dsl.cursor nav);
  check Alcotest.string "relative attr" "SessionListPage.SesList.Session"
    (Dsl.attr nav "Session");
  let nav = Dsl.follow "ToSes" ~scheme:"SessionPage" nav in
  check Alcotest.string "cursor after follow" "SessionPage" (Dsl.cursor nav)

let test_dsl_join_and_eval () =
  let profs =
    Dsl.(start "ProfListPage" |> dive "ProfList" |> follow "ToProf" ~scheme:"ProfPage")
  in
  let depts =
    Dsl.(start "DeptListPage" |> dive "DeptList" |> follow "ToDept" ~scheme:"DeptPage")
  in
  let joined = Dsl.(join_on [ ("DName", "DName") ] profs depts |> finish) in
  let r =
    Eval.eval uni_schema (Eval.instance_source (Lazy.force uni_instance)) joined
  in
  check int_t "20 profs each with a dept" 20 (Adm.Relation.cardinality r)

let test_dsl_qualified_passthrough () =
  (* already-qualified names are untouched *)
  let nav = Dsl.(start "ProfListPage" |> dive "ProfList") in
  check Alcotest.string "qualified name untouched" "Other.Attr" (Dsl.attr nav "Other.Attr")

(* ------------------------------------------------------------------ *)
(* Discovery                                                           *)
(* ------------------------------------------------------------------ *)

let test_discovery_confirms_university () =
  let audit = Discover.audit uni_schema (Lazy.force uni_instance) in
  check int_t "no declared link constraint refuted" 0
    (List.length audit.Discover.refuted_links);
  check int_t "no declared inclusion refuted" 0
    (List.length audit.Discover.refuted_inclusions)

let test_discovery_finds_paper_constraints () =
  let report = Discover.discover uni_schema (Lazy.force uni_instance) in
  let has_link src tgt =
    List.exists
      (fun (c : Adm.Constraints.link_constraint) ->
        String.equal (Adm.Constraints.path_to_string c.Adm.Constraints.source_attr) src
        && String.equal c.Adm.Constraints.target_attr tgt)
      report.Discover.discovered_links
  in
  (* the paper's two example link constraints (Section 3.2) *)
  check bool_t "ProfPage.DName = DeptPage.DName" true (has_link "ProfPage.DName" "DName");
  check bool_t "SessionPage.Session = CoursePage.Session" true
    (has_link "SessionPage.Session" "Session");
  let has_incl sub sup =
    List.exists
      (fun (c : Adm.Constraints.inclusion) ->
        String.equal (Adm.Constraints.path_to_string c.Adm.Constraints.sub) sub
        && String.equal (Adm.Constraints.path_to_string c.Adm.Constraints.sup) sup)
      report.Discover.discovered_inclusions
  in
  check bool_t "CoursePage.ToProf ⊆ ProfListPage.ProfList.ToProf" true
    (has_incl "CoursePage.ToProf" "ProfListPage.ProfList.ToProf")

let test_discovery_rejects_false_inclusion () =
  (* the converse inclusion must NOT be discovered when some professor
     teaches no course *)
  let uni = Sitegen.University.build () in
  let profs = Sitegen.University.profs uni in
  let courses = Sitegen.University.courses uni in
  let idle_prof_exists =
    List.exists
      (fun (p : Sitegen.University.prof) ->
        not
          (List.exists
             (fun (c : Sitegen.University.course) ->
               String.equal c.Sitegen.University.instructor p.Sitegen.University.p_name)
             courses))
      profs
  in
  if idle_prof_exists then begin
    let report = Discover.discover uni_schema (Lazy.force uni_instance) in
    let bad =
      List.exists
        (fun (c : Adm.Constraints.inclusion) ->
          String.equal
            (Adm.Constraints.path_to_string c.Adm.Constraints.sub)
            "ProfListPage.ProfList.ToProf"
          && String.equal
               (Adm.Constraints.path_to_string c.Adm.Constraints.sup)
               "CoursePage.ToProf")
        report.Discover.discovered_inclusions
    in
    check bool_t "converse not discovered" false bad
  end

let test_discovery_audit_refutes_broken_constraint () =
  (* add a bogus declared constraint; the audit must refute it *)
  let bogus =
    Adm.Constraints.link_constraint
      ~link:(Adm.Constraints.path "ProfPage" [ "ToDept" ])
      ~source_attr:(Adm.Constraints.path "ProfPage" [ "Email" ])
      ~target_scheme:"DeptPage" ~target_attr:"Address"
  in
  let broken =
    Adm.Schema.make ~name:"broken"
      ~schemes:(Adm.Schema.schemes uni_schema)
      ~link_constraints:(bogus :: Adm.Schema.link_constraints uni_schema)
      ~inclusions:(Adm.Schema.inclusions uni_schema)
  in
  let audit = Discover.audit broken (Lazy.force uni_instance) in
  check int_t "exactly the bogus constraint refuted" 1
    (List.length audit.Discover.refuted_links)

(* ------------------------------------------------------------------ *)
(* Byte-based cost (footnote 8)                                        *)
(* ------------------------------------------------------------------ *)

let test_byte_cost_distinguishes_intro_paths () =
  let bib = Sitegen.Bibliography.build () in
  let http = Websim.Http.connect (Sitegen.Bibliography.site bib) in
  let instance = Websim.Crawler.crawl Sitegen.Bibliography.schema http in
  let stats = Stats.of_instance instance in
  let cost e = Cost.byte_cost Sitegen.Bibliography.schema stats e in
  let c1 = cost (Sitegen.Bibliography.path1_all_conferences ()) in
  let c2 = cost (Sitegen.Bibliography.path2_db_conferences ()) in
  let c4 = cost (Sitegen.Bibliography.path4_via_authors ()) in
  (* page-count cost ties paths 1 and 2; bytes must not *)
  check bool_t "db-conference path cheaper in bytes" true (c2 < c1);
  check bool_t "author path far worse in bytes" true (c4 > 5.0 *. c1)

let test_byte_cost_tracks_measured_bytes () =
  let bib = Sitegen.Bibliography.build () in
  let http = Websim.Http.connect (Sitegen.Bibliography.site bib) in
  let instance = Websim.Crawler.crawl Sitegen.Bibliography.schema http in
  let stats = Stats.of_instance instance in
  let plan = Sitegen.Bibliography.path3_direct_link () in
  let predicted = Cost.byte_cost Sitegen.Bibliography.schema stats plan in
  Websim.Http.reset_stats http;
  let source = Eval.live_source Sitegen.Bibliography.schema http in
  let _ = Eval.eval Sitegen.Bibliography.schema source plan in
  let measured = float_of_int (Websim.Http.stats http).Websim.Http.bytes in
  check bool_t "within 2x of measured" true
    (predicted > measured /. 2.0 && predicted < measured *. 2.0)

(* ------------------------------------------------------------------ *)
(* Staleness tolerance                                                 *)
(* ------------------------------------------------------------------ *)

let test_max_age_skips_checks () =
  let uni = Sitegen.University.build () in
  let http = Websim.Http.connect (Sitegen.University.site uni) in
  let mv = Matview.materialize Sitegen.University.schema http in
  let plan =
    Dsl.(
      start "ProfListPage" |> dive "ProfList" |> follow "ToProf" ~scheme:"ProfPage"
      |> keep [ "PName" ] |> finish)
  in
  let fresh = Matview.query_counted ~max_age:1000 mv plan in
  check int_t "no light connections within tolerance" 0 fresh.Matview.light_connections;
  check int_t "no downloads" 0 fresh.Matview.downloads;
  (* without tolerance, checks resume *)
  let strict = Matview.query_counted mv plan in
  check bool_t "strict mode checks again" true (strict.Matview.light_connections > 0)

let test_max_age_serves_stale () =
  let uni = Sitegen.University.build () in
  let http = Websim.Http.connect (Sitegen.University.site uni) in
  let mv = Matview.materialize Sitegen.University.schema http in
  let plan =
    Dsl.(
      start "ProfListPage" |> dive "ProfList" |> follow "ToProf" ~scheme:"ProfPage"
      |> keep [ "PName" ] |> finish)
  in
  let p = List.hd (Sitegen.University.profs uni) in
  ignore (Sitegen.University.promote_professor uni ~p_name:p.Sitegen.University.p_name);
  (* tolerant query: serves the stale rank without network *)
  let tolerant = Matview.query_counted ~max_age:1000 mv plan in
  check int_t "stale but silent" 0 tolerant.Matview.downloads;
  (* strict query: sees the update *)
  let strict = Matview.query_counted mv plan in
  check int_t "strict downloads the change" 1 strict.Matview.downloads

(* ------------------------------------------------------------------ *)
(* Catalog site                                                        *)
(* ------------------------------------------------------------------ *)

let catalog = lazy (Sitegen.Catalog.build ())

let catalog_instance =
  lazy
    (let c = Lazy.force catalog in
     let http = Websim.Http.connect (Sitegen.Catalog.site c) in
     Websim.Crawler.crawl Sitegen.Catalog.schema http)

let test_catalog_constraints () =
  check Alcotest.(list string) "schema well-formed" []
    (Adm.Schema.validate Sitegen.Catalog.schema);
  check Alcotest.(list string) "instance satisfies constraints" []
    (Websim.Crawler.validate Sitegen.Catalog.schema (Lazy.force catalog_instance))

let test_catalog_two_paths_equivalent () =
  let source = Eval.instance_source (Lazy.force catalog_instance) in
  let eval = Eval.eval Sitegen.Catalog.schema source in
  let names nav_expr =
    Adm.Relation.column "ProductPage.PName" (eval nav_expr)
    |> List.map Adm.Value.to_string |> List.sort_uniq compare
  in
  let by_cat =
    Dsl.(
      start "CategoryListPage" |> dive "CatList" |> follow "ToCat" ~scheme:"CategoryPage"
      |> dive "ProductList" |> follow "ToProduct" ~scheme:"ProductPage" |> finish)
  in
  let by_brand =
    Dsl.(
      start "BrandListPage" |> dive "BrandList" |> follow "ToBrand" ~scheme:"BrandPage"
      |> dive "ProductList" |> follow "ToProduct" ~scheme:"ProductPage" |> finish)
  in
  check bool_t "both paths reach the same products" true (names by_cat = names by_brand);
  check int_t "all products" 120 (List.length (names by_cat))

let test_catalog_planner_picks_matching_entry () =
  let c = Lazy.force catalog in
  let stats = Stats.of_instance (Lazy.force catalog_instance) in
  let plan_of sql =
    (Planner.plan_sql Sitegen.Catalog.schema stats Sitegen.Catalog.view sql)
      .Planner.best
      .Planner.expr
  in
  ignore c;
  let brand_plan = plan_of "SELECT p.PName FROM Product p WHERE p.Brand = 'Acme'" in
  check bool_t "brand query enters through brands" true
    (List.mem "BrandListPage" (Nalg.aliases brand_plan));
  let cat_plan = plan_of "SELECT p.PName FROM Product p WHERE p.Category = 'Audio'" in
  check bool_t "category query enters through categories" true
    (List.mem "CategoryListPage" (Nalg.aliases cat_plan))

let test_catalog_range_query_correct () =
  let c = Lazy.force catalog in
  let stats = Stats.of_instance (Lazy.force catalog_instance) in
  let source = Eval.instance_source (Lazy.force catalog_instance) in
  let _, result =
    Planner.run Sitegen.Catalog.schema stats Sitegen.Catalog.view source
      "SELECT p.PName FROM Product p WHERE p.Brand = 'Acme' AND p.Price < 50"
  in
  let expected =
    List.filter
      (fun (p : Sitegen.Catalog.product) ->
        String.equal p.Sitegen.Catalog.brand "Acme" && p.Sitegen.Catalog.price < 50)
      (Sitegen.Catalog.products c)
  in
  check int_t "range query matches ground truth" (List.length expected)
    (Adm.Relation.cardinality result)

let test_catalog_reprice () =
  let c = Sitegen.Catalog.build () in
  let p = List.hd (Sitegen.Catalog.products c) in
  check bool_t "reprice ok" true
    (Sitegen.Catalog.reprice c ~p_name:p.Sitegen.Catalog.p_name ~price:1);
  let http = Websim.Http.connect (Sitegen.Catalog.site c) in
  let instance = Websim.Crawler.crawl Sitegen.Catalog.schema http in
  check Alcotest.(list string) "constraints still hold" []
    (Websim.Crawler.validate Sitegen.Catalog.schema instance)

let test_catalog_discovery_finds_equivalence () =
  let report = Discover.discover Sitegen.Catalog.schema (Lazy.force catalog_instance) in
  let has sub sup =
    List.exists
      (fun (c : Adm.Constraints.inclusion) ->
        String.equal (Adm.Constraints.path_to_string c.Adm.Constraints.sub) sub
        && String.equal (Adm.Constraints.path_to_string c.Adm.Constraints.sup) sup)
      report.Discover.discovered_inclusions
  in
  check bool_t "category ⊆ brand" true
    (has "CategoryPage.ProductList.ToProduct" "BrandPage.ProductList.ToProduct");
  check bool_t "brand ⊆ category" true
    (has "BrandPage.ProductList.ToProduct" "CategoryPage.ProductList.ToProduct")

(* ------------------------------------------------------------------ *)
(* Ablation flags and DOT output                                       *)
(* ------------------------------------------------------------------ *)

let test_ablation_pointer_rules () =
  let stats = Stats.of_instance (Lazy.force uni_instance) in
  let sql =
    "SELECT p.PName FROM Course c, CourseInstructor ci, Professor p, ProfDept pd \
     WHERE c.CName = ci.CName AND ci.PName = p.PName AND p.PName = pd.PName \
     AND pd.DName = 'Computer Science' AND c.Type = 'Graduate'"
  in
  let full =
    Planner.plan_sql uni_schema stats Sitegen.University.view sql
  in
  let ablated =
    Planner.plan_sql ~pointer_rules:false uni_schema stats Sitegen.University.view sql
  in
  check bool_t "pointer rules reduce best cost" true
    (full.Planner.best.Planner.cost < ablated.Planner.best.Planner.cost);
  (* the ablated plans are still correct *)
  let source = Eval.instance_source (Lazy.force uni_instance) in
  let rows o =
    Adm.Relation.rows
      (Planner.rename_output o (Eval.eval uni_schema source o.Planner.best.Planner.expr))
    |> List.map (List.map (fun (_, v) -> Adm.Value.to_string v))
    |> List.sort_uniq compare
  in
  check bool_t "ablated planner still correct" true (rows full = rows ablated)

let test_to_dot_well_formed () =
  let stats = Stats.of_instance (Lazy.force uni_instance) in
  let outcome =
    Planner.plan_sql uni_schema stats Sitegen.University.view
      "SELECT p.PName FROM Professor p WHERE p.Rank = 'Full'"
  in
  let dot = Explain.to_dot outcome.Planner.best.Planner.expr in
  check bool_t "digraph header" true (String.length dot > 13 && String.sub dot 0 13 = "digraph plan ");
  check bool_t "closed" true (String.length dot > 2 && String.sub dot (String.length dot - 2) 2 = "}\n");
  (* one node per operator *)
  let count sub s =
    let n = ref 0 in
    let len = String.length sub in
    for i = 0 to String.length s - len do
      if String.sub s i len = sub then incr n
    done;
    !n
  in
  check int_t "five nodes" 5 (count "label=" dot);
  check int_t "four edges" 4 (count " -> " dot)

(* ------------------------------------------------------------------ *)
(* Default-navigation inference (the paper's Section 5 suggestion)     *)
(* ------------------------------------------------------------------ *)

let test_infer_matches_declared_view () =
  (* the inferred navigation for ProfPage is exactly the Professor
     default navigation of Section 5 *)
  let declared =
    (View.find_exn Sitegen.University.view "Professor").View.navigations
    |> List.map (fun n -> Nalg.canonical n.View.nav_expr)
  in
  let inferred =
    View.infer_navigations uni_schema ~scheme:"ProfPage" |> List.map Nalg.canonical
  in
  check bool_t "inferred = declared" true (inferred = declared)

let test_infer_course_via_sessions () =
  match View.infer_navigations uni_schema ~scheme:"CoursePage" with
  | [ nav ] ->
    (* only the session path covers all courses (the professor path is
       strictly contained, Section 5) *)
    check bool_t "goes through sessions" true (List.mem "SessionPage" (Nalg.aliases nav));
    (* and it indeed reaches every course *)
    let r = Eval.eval uni_schema (Eval.instance_source (Lazy.force uni_instance)) nav in
    check int_t "all 50 courses" 50
      (Adm.Relation.distinct_count "CoursePage.URL" r)
  | navs -> Alcotest.failf "expected exactly one navigation, got %d" (List.length navs)

let test_infer_catalog_equivalence_gives_two () =
  (* products are reachable via two equivalent maximal paths: both are
     inferred *)
  let navs = View.infer_navigations Sitegen.Catalog.schema ~scheme:"ProductPage" in
  check int_t "two navigations" 2 (List.length navs);
  let entries = List.concat_map Nalg.aliases navs in
  check bool_t "one per hierarchy" true
    (List.mem "CategoryListPage" entries && List.mem "BrandListPage" entries)

let test_infer_navigations_are_well_formed () =
  List.iter
    (fun scheme ->
      List.iter
        (fun nav ->
          check Alcotest.(list string) (Fmt.str "%s nav checks" scheme) []
            (List.map Diagnostic.to_string (Typecheck.check uni_schema nav)))
        (View.infer_navigations uni_schema ~scheme))
    [ "ProfPage"; "CoursePage"; "DeptPage"; "SessionPage" ]

let suite =
  ( "extensions",
    [
      Alcotest.test_case "ablation pointer rules" `Quick test_ablation_pointer_rules;
      Alcotest.test_case "to_dot well-formed" `Quick test_to_dot_well_formed;
      Alcotest.test_case "infer matches declared view" `Quick test_infer_matches_declared_view;
      Alcotest.test_case "infer course via sessions" `Quick test_infer_course_via_sessions;
      Alcotest.test_case "infer catalog equivalence" `Quick
        test_infer_catalog_equivalence_gives_two;
      Alcotest.test_case "inferred navs well-formed" `Quick
        test_infer_navigations_are_well_formed;
      Alcotest.test_case "dsl matches raw nalg" `Quick test_dsl_matches_raw_nalg;
      Alcotest.test_case "dsl cursor tracking" `Quick test_dsl_cursor_tracking;
      Alcotest.test_case "dsl join and eval" `Quick test_dsl_join_and_eval;
      Alcotest.test_case "dsl qualified passthrough" `Quick test_dsl_qualified_passthrough;
      Alcotest.test_case "discovery confirms university" `Quick test_discovery_confirms_university;
      Alcotest.test_case "discovery finds paper constraints" `Quick
        test_discovery_finds_paper_constraints;
      Alcotest.test_case "discovery rejects false inclusion" `Quick
        test_discovery_rejects_false_inclusion;
      Alcotest.test_case "audit refutes broken constraint" `Quick
        test_discovery_audit_refutes_broken_constraint;
      Alcotest.test_case "byte cost distinguishes intro paths" `Quick
        test_byte_cost_distinguishes_intro_paths;
      Alcotest.test_case "byte cost tracks measured" `Quick test_byte_cost_tracks_measured_bytes;
      Alcotest.test_case "max_age skips checks" `Quick test_max_age_skips_checks;
      Alcotest.test_case "max_age serves stale" `Quick test_max_age_serves_stale;
      Alcotest.test_case "catalog constraints" `Quick test_catalog_constraints;
      Alcotest.test_case "catalog two paths equivalent" `Quick test_catalog_two_paths_equivalent;
      Alcotest.test_case "catalog planner picks entry" `Quick
        test_catalog_planner_picks_matching_entry;
      Alcotest.test_case "catalog range query" `Quick test_catalog_range_query_correct;
      Alcotest.test_case "catalog reprice" `Quick test_catalog_reprice;
      Alcotest.test_case "catalog discovery equivalence" `Quick
        test_catalog_discovery_finds_equivalence;
    ] )
