(* Oracle tests for the columnar relation kernel: naive reference
   implementations over association-list tuples (the seed engine's
   semantics) must agree with the positional engine, up to row order,
   on randomized relations. The value pool is deliberately tiny and
   full of look-alikes (Int 1, Text "1", Link "1", Bool true,
   Text "true", Null) so set-semantics operators are stressed on both
   collisions and type confusion. *)

open Adm

let check = Alcotest.check
let bool_t = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Reference implementations                                           *)
(* ------------------------------------------------------------------ *)

let mem_tuple t rows = List.exists (Value.equal_tuple t) rows

let oracle_distinct rows =
  List.fold_left (fun acc t -> if mem_tuple t acc then acc else t :: acc) [] rows
  |> List.rev

let oracle_union r1 r2 = oracle_distinct (r1 @ r2)

let oracle_difference r1 r2 =
  List.filter (fun t -> not (mem_tuple t r2)) r1

(* Nested-loop join on [keys = [(a1, a2); ...]]; Null keys never
   match; right attributes not present on the left are appended. *)
let oracle_join keys left_attrs r1 r2 =
  let key_matches t1 t2 =
    List.for_all
      (fun (a1, a2) ->
        let v1 = Value.find_exn t1 a1 and v2 = Value.find_exn t2 a2 in
        (not (Value.is_null v1)) && (not (Value.is_null v2)) && Value.equal v1 v2)
      keys
  in
  List.concat_map
    (fun t1 ->
      List.filter_map
        (fun t2 ->
          if key_matches t1 t2 then
            Some
              (t1
              @ List.filter (fun (a, _) -> not (List.mem a left_attrs)) t2)
          else None)
        r2)
    r1

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let confusable_values =
  [
    Value.Null; Value.Int 0; Value.Int 1; Value.text "0"; Value.text "1";
    Value.link "1"; Value.Bool true; Value.text "true"; Value.text "";
  ]

let value_gen = QCheck.Gen.oneofl confusable_values

let tuple_gen attrs =
  QCheck.Gen.(
    map
      (fun vs -> List.map2 (fun a v -> (a, v)) attrs vs)
      (flatten_l (List.map (fun _ -> value_gen) attrs)))

let rows_gen ?(max = 20) attrs = QCheck.Gen.(list_size (int_bound max) (tuple_gen attrs))

let rel_arb attrs =
  QCheck.make
    ~print:(fun rows -> Fmt.str "%a" Relation.pp (Relation.make attrs rows))
    (rows_gen attrs)

(* Compare an engine relation with oracle tuples, up to row order.
   Oracle tuples are already in header order by construction. *)
let same_rows rel expected =
  let sort = List.sort Value.compare_tuple in
  List.equal Value.equal_tuple (sort (Relation.rows rel)) (sort expected)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let abc = [ "A"; "B"; "C" ]

let prop_distinct =
  QCheck.Test.make ~name:"distinct agrees with oracle" ~count:300 (rel_arb abc)
    (fun rows ->
      same_rows (Relation.distinct (Relation.make abc rows)) (oracle_distinct rows))

let prop_union =
  QCheck.Test.make ~name:"union agrees with oracle" ~count:300
    (QCheck.pair (rel_arb abc) (rel_arb abc))
    (fun (r1, r2) ->
      same_rows
        (Relation.union (Relation.make abc r1) (Relation.make abc r2))
        (oracle_union r1 r2))

let prop_difference =
  QCheck.Test.make ~name:"difference agrees with oracle" ~count:300
    (QCheck.pair (rel_arb abc) (rel_arb abc))
    (fun (r1, r2) ->
      same_rows
        (Relation.difference (Relation.make abc r1) (Relation.make abc r2))
        (oracle_difference r1 r2))

let left_attrs = [ "K"; "A" ]
let right_attrs = [ "K2"; "B" ]

let prop_join =
  QCheck.Test.make ~name:"equi_join agrees with oracle" ~count:300
    (QCheck.pair (rel_arb left_attrs) (rel_arb right_attrs))
    (fun (r1, r2) ->
      same_rows
        (Relation.equi_join [ ("K", "K2") ] (Relation.make left_attrs r1)
           (Relation.make right_attrs r2))
        (oracle_join [ ("K", "K2") ] left_attrs r1 r2))

let prop_project =
  QCheck.Test.make ~name:"project agrees with oracle" ~count:300 (rel_arb abc)
    (fun rows ->
      same_rows
        (Relation.project [ "B"; "A" ] (Relation.make abc rows))
        (oracle_distinct
           (List.map
              (fun t -> [ ("B", Value.find_exn t "B"); ("A", Value.find_exn t "A") ])
              rows)))

(* nest then unnest restores the flat relation exactly (as a multiset:
   nest buckets keep duplicate inner tuples, so nothing is lost). *)
let flat_attrs = [ "G"; "N.X"; "N.Y" ]

let prop_nest_unnest_roundtrip =
  QCheck.Test.make ~name:"unnest ∘ nest = id on flat relations" ~count:300
    (rel_arb flat_attrs)
    (fun rows ->
      let flat = Relation.make flat_attrs rows in
      let roundtrip = Relation.unnest "N" (Relation.nest ~into:"N" flat) in
      QCheck.assume (rows <> []);
      List.equal String.equal (Relation.attrs roundtrip) flat_attrs
      && same_rows roundtrip (Relation.rows flat))

(* distinct of the nested side: grouping must key on outer attributes
   structurally, so e.g. outer Int 1 and Text "1" form two groups. *)
let prop_nest_group_count =
  QCheck.Test.make ~name:"nest groups = distinct outer rows" ~count:300
    (rel_arb flat_attrs)
    (fun rows ->
      QCheck.assume (rows <> []);
      let flat = Relation.make flat_attrs rows in
      Relation.cardinality (Relation.nest ~into:"N" flat)
      = Relation.cardinality (Relation.project [ "G" ] flat))

let suite =
  ( "kernel-oracle",
    [
      QCheck_alcotest.to_alcotest prop_distinct;
      QCheck_alcotest.to_alcotest prop_union;
      QCheck_alcotest.to_alcotest prop_difference;
      QCheck_alcotest.to_alcotest prop_join;
      QCheck_alcotest.to_alcotest prop_project;
      QCheck_alcotest.to_alcotest prop_nest_unnest_roundtrip;
      QCheck_alcotest.to_alcotest prop_nest_group_count;
    ] )
