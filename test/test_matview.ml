(* Tests for materialized views (Section 8): Function 2 (URLCheck),
   Algorithm 3 (query evaluation with lazy maintenance), the
   CheckMissing queue and the off-line sweep. *)

open Webviews

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let schema = Sitegen.University.schema
let registry = Sitegen.University.view

(* Fresh site + materialized view per test (tests mutate the site). *)
let setup () =
  let uni = Sitegen.University.build () in
  let http = Websim.Http.connect (Sitegen.University.site uni) in
  let mv = Matview.materialize schema http in
  (uni, http, mv)

let cs_profs_plan (uni : Sitegen.University.t) http =
  let instance = Websim.Crawler.crawl schema http in
  ignore uni;
  let stats = Stats.of_instance instance in
  (* Email is not replicated on the department page, so the plan must
     actually navigate to the professor pages (with PName alone,
     rule 7 would answer from DeptPage.ProfList and follow nothing) *)
  let outcome =
    Planner.plan_sql schema stats registry
      "SELECT p.PName, p.Email FROM Professor p, ProfDept d WHERE p.PName = d.PName \
       AND d.DName = 'Computer Science'"
  in
  outcome.Planner.best.Planner.expr

let test_materialize_stores_all () =
  let uni, _, mv = setup () in
  check int_t "all pages stored"
    (Websim.Site.page_count (Sitegen.University.site uni))
    (Matview.total_pages mv);
  check int_t "professors table" 20 (Matview.stored_pages mv "ProfPage")

let test_fresh_query_uses_light_connections_only () =
  let uni, http, mv = setup () in
  let plan = cs_profs_plan uni http in
  let report = Matview.query_counted mv plan in
  check bool_t "rows returned" true (Adm.Relation.cardinality report.Matview.result > 0);
  check int_t "no downloads on a fresh view" 0 report.Matview.downloads;
  check bool_t "light connections used" true (report.Matview.light_connections > 0)

let test_query_detects_update () =
  let uni, http, mv = setup () in
  let plan = cs_profs_plan uni http in
  let before = Matview.query_counted mv plan in
  (* hire into CS: DeptPage and the new ProfPage change *)
  let _p = Sitegen.University.hire_professor uni ~dept_name:"Computer Science" in
  let after = Matview.query_counted mv plan in
  check int_t "one more professor"
    (Adm.Relation.cardinality before.Matview.result + 1)
    (Adm.Relation.cardinality after.Matview.result);
  check int_t "exactly the changed pages downloaded" 2 after.Matview.downloads

let test_update_not_on_path_is_invisible () =
  let uni, http, mv = setup () in
  let plan = cs_profs_plan uni http in
  (* revising a course touches no page the plan visits *)
  let c = List.hd (Sitegen.University.courses uni) in
  check bool_t "revision applied" true
    (Sitegen.University.revise_course uni ~c_name:c.Sitegen.University.c_name);
  let report = Matview.query_counted mv plan in
  check int_t "no downloads for unrelated update" 0 report.Matview.downloads

let test_unchanged_page_not_downloaded () =
  let uni, http, mv = setup () in
  let plan = cs_profs_plan uni http in
  let _ = Matview.query_counted mv plan in
  (* second run: still only light connections *)
  let again = Matview.query_counted mv plan in
  check int_t "no downloads on repeat" 0 again.Matview.downloads

let test_status_checked_within_query () =
  let uni, http, mv = setup () in
  let plan = cs_profs_plan uni http in
  let report = Matview.query_counted mv plan in
  (* within one query, each URL is checked at most once even though
     the evaluator touches the entry point for each navigation *)
  check bool_t "light connections bounded by distinct URLs" true
    (report.Matview.light_connections <= Matview.total_pages mv)

let test_deleted_page_detected () =
  let uni, http, mv = setup () in
  (* build a plan touching all professors *)
  let instance = Websim.Crawler.crawl schema http in
  let stats = Stats.of_instance instance in
  let outcome =
    Planner.plan_sql schema stats registry "SELECT p.PName, p.Rank FROM Professor p"
  in
  let plan = outcome.Planner.best.Planner.expr in
  let before = Matview.query_counted mv plan in
  (* the site manager deletes a professor page without fixing links *)
  let victim = List.hd (Sitegen.University.profs uni) in
  Websim.Site.tick (Sitegen.University.site uni);
  Websim.Site.delete (Sitegen.University.site uni)
    (Sitegen.University.prof_url victim.Sitegen.University.p_name);
  let after = Matview.query_counted mv plan in
  check int_t "one fewer professor"
    (Adm.Relation.cardinality before.Matview.result - 1)
    (Adm.Relation.cardinality after.Matview.result);
  check bool_t "missing queued for off-line check" true
    (Matview.check_missing_backlog mv > 0);
  let purged = Matview.offline_sweep mv in
  check bool_t "sweep purges the dead page" true (purged >= 1);
  check int_t "backlog drained" 0 (Matview.check_missing_backlog mv)

let test_new_link_downloads_new_page () =
  let uni, http, mv = setup () in
  let plan = cs_profs_plan uni http in
  let _ = Matview.query_counted mv plan in
  let p = Sitegen.University.hire_professor uni ~dept_name:"Computer Science" in
  let after = Matview.query_counted mv plan in
  (* the new professor's page was never materialized; the changed
     DeptPage marks the link as new and the page is fetched *)
  check bool_t "new page now stored" true
    (Matview.stored_tuple mv ~scheme:"ProfPage"
       ~url:(Sitegen.University.prof_url p.Sitegen.University.p_name)
    <> None);
  check bool_t "answer includes the hire" true
    (List.exists
       (fun t ->
         match Adm.Value.find t "ProfPage.PName" with
         | Some (Adm.Value.Text n) -> String.equal (Adm.Value.Atom.str n) p.Sitegen.University.p_name
         | _ -> false)
       (Adm.Relation.rows after.Matview.result))

let test_lazy_anomaly_and_full_refresh () =
  (* the paper's consistency caveat: a page updated on one path is not
     refreshed via other paths until they are navigated; full_refresh
     restores global consistency *)
  let uni, http, mv = setup () in
  let plan = cs_profs_plan uni http in
  let _ = Matview.query_counted mv plan in
  let _p = Sitegen.University.hire_professor uni ~dept_name:"Mathematics" in
  (* CS query does not navigate Mathematics: view still stale there *)
  check int_t "math dept page stale" 20 (Matview.stored_pages mv "ProfPage");
  Matview.full_refresh mv;
  check int_t "refresh catches up" 21 (Matview.stored_pages mv "ProfPage")

let test_matview_agrees_with_virtual () =
  let uni, http, mv = setup () in
  let plan = cs_profs_plan uni http in
  ignore uni;
  let virt = Eval.eval schema (Eval.live_source schema http) plan in
  let mat = Matview.query mv plan in
  check bool_t "same answer as the virtual view" true
    (Adm.Relation.equal (Adm.Relation.sort_rows virt) (Adm.Relation.sort_rows mat))

let test_counters_reset () =
  let uni, http, mv = setup () in
  let plan = cs_profs_plan uni http in
  let r1 = Matview.query_counted mv plan in
  let r2 = Matview.query_counted mv plan in
  check int_t "counters are per query" r1.Matview.light_connections
    r2.Matview.light_connections

let suite =
  ( "matview",
    [
      Alcotest.test_case "materialize stores all" `Quick test_materialize_stores_all;
      Alcotest.test_case "fresh query = light connections" `Quick
        test_fresh_query_uses_light_connections_only;
      Alcotest.test_case "update detected" `Quick test_query_detects_update;
      Alcotest.test_case "unrelated update invisible" `Quick test_update_not_on_path_is_invisible;
      Alcotest.test_case "unchanged not downloaded" `Quick test_unchanged_page_not_downloaded;
      Alcotest.test_case "status checked within query" `Quick test_status_checked_within_query;
      Alcotest.test_case "deleted page detected + sweep" `Quick test_deleted_page_detected;
      Alcotest.test_case "new link downloads page" `Quick test_new_link_downloads_new_page;
      Alcotest.test_case "lazy anomaly + full refresh" `Quick test_lazy_anomaly_and_full_refresh;
      Alcotest.test_case "matview = virtual answers" `Quick test_matview_agrees_with_virtual;
      Alcotest.test_case "counters reset" `Quick test_counters_reset;
    ] )
