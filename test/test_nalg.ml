(* Tests for the navigational algebra AST, predicates and evaluation. *)

open Webviews

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

let uni_schema = Sitegen.University.schema

(* Shared fixture: one university site and a crawled instance. *)
let uni = lazy (Sitegen.University.build ())

let instance =
  lazy
    (let u = Lazy.force uni in
     let http = Websim.Http.connect (Sitegen.University.site u) in
     Websim.Crawler.crawl uni_schema http)

let eval_instance expr =
  Eval.eval uni_schema (Eval.instance_source (Lazy.force instance)) expr

(* ProfListPage ◦ ProfList → ProfPage — the paper's Expression 1 *)
let profs_nav =
  Nalg.follow
    (Nalg.unnest (Nalg.entry "ProfListPage") "ProfListPage.ProfList")
    "ProfListPage.ProfList.ToProf" ~scheme:"ProfPage"

(* ------------------------------------------------------------------ *)
(* Pred                                                                *)
(* ------------------------------------------------------------------ *)

let test_pred_eval () =
  let t = [ ("A", Adm.Value.Int 3); ("B", Adm.Value.text "x") ] in
  check bool_t "eq const" true (Pred.eval [ Pred.eq_const "A" (Adm.Value.Int 3) ] t);
  check bool_t "eq const false" false (Pred.eval [ Pred.eq_const "A" (Adm.Value.Int 4) ] t);
  check bool_t "conjunction" false
    (Pred.eval [ Pred.eq_const "A" (Adm.Value.Int 3); Pred.eq_const "B" (Adm.Value.text "y") ] t);
  check bool_t "lt" true
    (Pred.eval [ Pred.atom (Pred.Attr "A") Pred.Lt (Pred.Const (Adm.Value.Int 5)) ] t);
  check bool_t "empty pred is true" true (Pred.eval [] t)

let test_pred_nulls () =
  let t = [ ("A", Adm.Value.Null) ] in
  check bool_t "null = x is false" false (Pred.eval [ Pred.eq_const "A" (Adm.Value.Int 0) ] t);
  check bool_t "null <> x is false too" false
    (Pred.eval [ Pred.atom (Pred.Attr "A") Pred.Neq (Pred.Const (Adm.Value.Int 0)) ] t);
  check bool_t "missing attr behaves as null" false
    (Pred.eval [ Pred.eq_const "Zed" (Adm.Value.Int 0) ] t)

let test_pred_subst () =
  let p = [ Pred.eq_attrs "A" "B" ] in
  let p' = Pred.subst_attr ~from:"A" ~into:"X" p in
  check string_t "substituted" "X = B" (Pred.to_string p')

(* ------------------------------------------------------------------ *)
(* AST basics                                                          *)
(* ------------------------------------------------------------------ *)

let test_alias_env () =
  let env = Nalg.alias_env profs_nav in
  check bool_t "ProfListPage in env" true (List.mem_assoc "ProfListPage" env);
  check bool_t "ProfPage in env" true (List.mem_assoc "ProfPage" env);
  check (Alcotest.option string_t) "scheme lookup" (Some "ProfPage")
    (Nalg.scheme_of_alias profs_nav "ProfPage")

let test_output_attrs () =
  let attrs = Nalg.output_attrs uni_schema profs_nav in
  check bool_t "prof attrs present" true (List.mem "ProfPage.Rank" attrs);
  check bool_t "unnested attrs present" true
    (List.mem "ProfListPage.ProfList.PName" attrs);
  check bool_t "url present" true (List.mem "ProfPage.URL" attrs)

let test_split_attr () =
  match Nalg.split_attr [ "ProfPage"; "X" ] "ProfPage.CourseList.CName" with
  | Some (alias, steps) ->
    check string_t "alias" "ProfPage" alias;
    check Alcotest.(list string_t) "steps" [ "CourseList"; "CName" ] steps
  | None -> Alcotest.fail "split failed"

let test_constraint_path () =
  match Nalg.constraint_path_of_attr profs_nav "ProfPage.Rank" with
  | Some (p, alias) ->
    check string_t "scheme" "ProfPage" p.Adm.Constraints.scheme;
    check string_t "alias" "ProfPage" alias
  | None -> Alcotest.fail "path resolution failed"

let test_externals_computability () =
  let q = Nalg.join [] (Nalg.external_ "Professor") (Nalg.external_ "Course") in
  check int_t "two externals" 2 (List.length (Nalg.externals q));
  check bool_t "not computable" false (Nalg.is_computable q);
  check bool_t "navigation computable" true (Nalg.is_computable profs_nav)

let test_rename_alias () =
  let renamed = Nalg.rename_alias ~from:"ProfPage" ~into:"P2" profs_nav in
  check bool_t "alias renamed" true (List.mem "P2" (Nalg.aliases renamed));
  check bool_t "old alias gone" false (List.mem "ProfPage" (Nalg.aliases renamed));
  (* attribute references follow *)
  let attrs = Nalg.output_attrs uni_schema renamed in
  check bool_t "attrs requalified" true (List.mem "P2.Rank" attrs)

let test_uniquify () =
  let taken = [ "ProfPage"; "ProfListPage" ] in
  let e = Nalg.uniquify_aliases ~taken profs_nav in
  check bool_t "fresh aliases avoid taken" true
    (List.for_all (fun a -> not (List.mem a taken)) (Nalg.aliases e))

let test_canonical_equal () =
  check bool_t "equal to itself" true (Nalg.equal profs_nav profs_nav);
  check bool_t "differs from variant" false
    (Nalg.equal profs_nav (Nalg.select [] profs_nav))

let test_size_fold () =
  check int_t "size of nav" 3 (Nalg.size profs_nav)

let diag_codes schema e =
  List.map (fun (d : Diagnostic.t) -> d.Diagnostic.code) (Typecheck.check schema e)

let test_static_check_accepts () =
  check Alcotest.(list string_t) "valid navigation" [] (diag_codes uni_schema profs_nav)

let test_static_check_rejects () =
  let bad_entry = Nalg.entry "ProfPage" in
  check bool_t "non-entry rejected" true (diag_codes uni_schema bad_entry <> []);
  let bad_select =
    Nalg.select [ Pred.eq_const "Nope.X" (Adm.Value.Int 0) ] profs_nav
  in
  check bool_t "unknown attribute rejected" true (diag_codes uni_schema bad_select <> []);
  let bad_unnest = Nalg.unnest profs_nav "ProfPage.Rank" in
  check bool_t "unnest of atom rejected" true (diag_codes uni_schema bad_unnest <> []);
  let bad_follow =
    Nalg.follow profs_nav "ProfPage.ToDept" ~scheme:"CoursePage"
  in
  check bool_t "wrong follow target rejected" true (diag_codes uni_schema bad_follow <> []);
  let external_left = Nalg.external_ "Professor" in
  check bool_t "external rejected" true (diag_codes uni_schema external_left <> [])

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

let test_eval_entry () =
  let r = eval_instance (Nalg.entry "ProfListPage") in
  check int_t "single page" 1 (Adm.Relation.cardinality r);
  check bool_t "qualified attrs" true (Adm.Relation.has_attr r "ProfListPage.URL")

let test_eval_entry_requires_entry_point () =
  Alcotest.check_raises "non-entry scan rejected"
    (Eval.Not_computable "page-scheme ProfPage is not an entry point") (fun () ->
      ignore (eval_instance (Nalg.entry "ProfPage")))

let test_eval_external_rejected () =
  Alcotest.check_raises "external rejected"
    (Eval.Not_computable
       "external relation Professor must be replaced by a default navigation (rule 1)")
    (fun () -> ignore (eval_instance (Nalg.external_ "Professor")))

let test_eval_unnest_follow () =
  let r = eval_instance profs_nav in
  check int_t "all professors" 20 (Adm.Relation.cardinality r);
  check bool_t "rank available" true (Adm.Relation.has_attr r "ProfPage.Rank");
  (* the link value equals the page URL (the follow's implicit join) *)
  check bool_t "link = URL" true
    (List.for_all
       (fun t ->
         Adm.Value.equal
           (Adm.Value.find_exn t "ProfListPage.ProfList.ToProf")
           (Adm.Value.find_exn t "ProfPage.URL"))
       (Adm.Relation.rows r))

let test_eval_select_project () =
  let e =
    Nalg.project [ "ProfPage.PName" ]
      (Nalg.select [ Pred.eq_const "ProfPage.Rank" (Adm.Value.text "Full") ] profs_nav)
  in
  let r = eval_instance e in
  let full_profs =
    List.filter
      (fun (p : Sitegen.University.prof) -> String.equal p.Sitegen.University.rank "Full")
      (Sitegen.University.profs (Lazy.force uni))
  in
  check int_t "full professors" (List.length full_profs) (Adm.Relation.cardinality r)

let test_eval_join () =
  (* professors joined with their department pages through DName *)
  let dept_nav =
    Nalg.follow
      (Nalg.unnest (Nalg.entry "DeptListPage") "DeptListPage.DeptList")
      "DeptListPage.DeptList.ToDept" ~scheme:"DeptPage"
  in
  let e = Nalg.join [ ("ProfPage.DName", "DeptPage.DName") ] profs_nav dept_nav in
  let r = eval_instance e in
  check int_t "every prof has one dept" 20 (Adm.Relation.cardinality r);
  check bool_t "address joined in" true (Adm.Relation.has_attr r "DeptPage.Address")

let test_eval_deep_nesting () =
  (* bibliography: two-level unnest of papers then authors *)
  let bib = Sitegen.Bibliography.build () in
  let http = Websim.Http.connect (Sitegen.Bibliography.site bib) in
  let inst = Websim.Crawler.crawl Sitegen.Bibliography.schema http in
  let r =
    Eval.eval Sitegen.Bibliography.schema (Eval.instance_source inst)
      (Sitegen.Bibliography.path3_direct_link ())
  in
  check bool_t "author names exposed" true
    (Adm.Relation.has_attr r "EditionPage.PaperList.AuthorList.AName");
  check bool_t "non-empty" true (Adm.Relation.cardinality r > 0)

let test_eval_live_cache () =
  let u = Lazy.force uni in
  let http = Websim.Http.connect (Sitegen.University.site u) in
  (* navigating professors twice within one query must fetch each page
     once (distinct network accesses, as the cost model counts) *)
  let e =
    Nalg.join
      [ ("ProfPage.PName", "P2.PName") ]
      profs_nav
      (Nalg.follow
         (Nalg.unnest (Nalg.entry ~alias:"PL2" "ProfListPage") "PL2.ProfList")
         "PL2.ProfList.ToProf" ~scheme:"ProfPage" ~alias:"P2")
  in
  Websim.Http.reset_stats http;
  let source = Eval.live_source uni_schema http in
  let r = Eval.eval uni_schema source e in
  check int_t "self join" 20 (Adm.Relation.cardinality r);
  check int_t "21 distinct pages fetched" 21 (Websim.Http.stats http).Websim.Http.gets

let test_eval_nocache () =
  let u = Lazy.force uni in
  let http = Websim.Http.connect (Sitegen.University.site u) in
  Websim.Http.reset_stats http;
  let source = Eval.live_source ~cache:false uni_schema http in
  let _ = Eval.eval uni_schema source profs_nav in
  check int_t "21 fetches without cache" 21 (Websim.Http.stats http).Websim.Http.gets

let suite =
  ( "nalg",
    [
      Alcotest.test_case "pred eval" `Quick test_pred_eval;
      Alcotest.test_case "pred nulls" `Quick test_pred_nulls;
      Alcotest.test_case "pred subst" `Quick test_pred_subst;
      Alcotest.test_case "alias env" `Quick test_alias_env;
      Alcotest.test_case "output attrs" `Quick test_output_attrs;
      Alcotest.test_case "split attr" `Quick test_split_attr;
      Alcotest.test_case "constraint path" `Quick test_constraint_path;
      Alcotest.test_case "externals/computability" `Quick test_externals_computability;
      Alcotest.test_case "rename alias" `Quick test_rename_alias;
      Alcotest.test_case "uniquify" `Quick test_uniquify;
      Alcotest.test_case "canonical equal" `Quick test_canonical_equal;
      Alcotest.test_case "size" `Quick test_size_fold;
      Alcotest.test_case "static check accepts" `Quick test_static_check_accepts;
      Alcotest.test_case "static check rejects" `Quick test_static_check_rejects;
      Alcotest.test_case "eval entry" `Quick test_eval_entry;
      Alcotest.test_case "eval entry non-entry" `Quick test_eval_entry_requires_entry_point;
      Alcotest.test_case "eval external rejected" `Quick test_eval_external_rejected;
      Alcotest.test_case "eval unnest/follow" `Quick test_eval_unnest_follow;
      Alcotest.test_case "eval select/project" `Quick test_eval_select_project;
      Alcotest.test_case "eval join" `Quick test_eval_join;
      Alcotest.test_case "eval deep nesting" `Quick test_eval_deep_nesting;
      Alcotest.test_case "eval live cache" `Quick test_eval_live_cache;
      Alcotest.test_case "eval nocache" `Quick test_eval_nocache;
    ] )
