(* Tests for the network runtime: the seeded fault/latency model
   (Netmodel) and the resilient fetch engine (Fetcher) — determinism,
   pass-through counter identity with the pre-runtime code paths,
   exactness of query results under injected transient faults,
   dangling-link and materialized-view semantics over a faulty
   network, circuit breaker, LRU cache and batched fetch windows. *)

open Webviews

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let uni_schema = Sitegen.University.schema
let uni_registry = Sitegen.University.view

let uni_setup () =
  let u = Sitegen.University.build () in
  (u, Sitegen.University.site u)

let prof_url_at u i =
  Sitegen.University.prof_url
    (List.nth (Sitegen.University.profs u) i).Sitegen.University.p_name

let uni_stats site =
  Stats.of_instance (Websim.Crawler.crawl uni_schema (Websim.Http.connect site))

let best_plan site sql =
  let outcome = Planner.plan_sql uni_schema (uni_stats site) uni_registry sql in
  outcome.Planner.best.Planner.expr

let rows_sorted rel = Adm.Relation.sort_rows rel

(* ------------------------------------------------------------------ *)
(* Netmodel                                                            *)
(* ------------------------------------------------------------------ *)

let test_netmodel_determinism () =
  let mk seed =
    Websim.Netmodel.create (Websim.Netmodel.config ~seed ~fault_rate:0.3 ())
  in
  let m1 = mk 7 and m2 = mk 7 and m3 = mk 8 in
  let urls = List.init 50 (fun i -> Fmt.str "/page/%d" i) in
  List.iter
    (fun url ->
      List.iter
        (fun attempt ->
          check bool_t "same seed, same outcome" true
            (Websim.Netmodel.fault m1 ~url ~attempt
            = Websim.Netmodel.fault m2 ~url ~attempt);
          check (Alcotest.float 1e-9) "same seed, same latency"
            (Websim.Netmodel.latency_ms m1 ~kind:`Get ~url ~attempt ~bytes:1000)
            (Websim.Netmodel.latency_ms m2 ~kind:`Get ~url ~attempt ~bytes:1000))
        [ 1; 2; 3 ])
    urls;
  check bool_t "different seed differs somewhere" true
    (List.exists
       (fun url ->
         Websim.Netmodel.fault m1 ~url ~attempt:1
         <> Websim.Netmodel.fault m3 ~url ~attempt:1
         || Websim.Netmodel.latency_ms m1 ~kind:`Get ~url ~attempt:1 ~bytes:1000
            <> Websim.Netmodel.latency_ms m3 ~kind:`Get ~url ~attempt:1 ~bytes:1000)
       urls)

let test_episode_bounds () =
  (* even at fault rate 1.0 every failure episode is transient by
     construction: attempt max_consecutive+1 always succeeds, so a
     retry budget >= max_consecutive guarantees exact results *)
  let m =
    Websim.Netmodel.create
      (Websim.Netmodel.config ~seed:11 ~fault_rate:1.0 ~max_consecutive:2 ())
  in
  List.iter
    (fun i ->
      let url = Fmt.str "/p/%d" i in
      check bool_t "attempt 1 fails" true
        (Websim.Netmodel.fault m ~url ~attempt:1 <> Websim.Netmodel.Ok_response);
      check bool_t "attempt max_consecutive+1 succeeds" true
        (Websim.Netmodel.fault m ~url ~attempt:3 = Websim.Netmodel.Ok_response))
    (List.init 100 Fun.id)

(* ------------------------------------------------------------------ *)
(* Pass-through counter identity (runtime off = pre-runtime numbers)   *)
(* ------------------------------------------------------------------ *)

(* The exact GET/byte counters the code produced before the fetch
   engine existed, for the default builds of the three sites. With no
   netmodel the engine must be a strict pass-through. *)
let test_passthrough_crawl_identity () =
  List.iter
    (fun (name, schema, site, gets, bytes) ->
      let http = Websim.Http.connect site in
      let instance = Websim.Crawler.crawl schema http in
      let s = Websim.Http.stats http in
      check int_t (name ^ ": pages fetched") gets instance.Websim.Crawler.fetched;
      check int_t (name ^ ": GETs") gets s.Websim.Http.gets;
      check int_t (name ^ ": bytes") bytes s.Websim.Http.bytes;
      check int_t (name ^ ": HEADs") 0 s.Websim.Http.heads;
      check int_t (name ^ ": head bytes") 0 s.Websim.Http.head_bytes;
      check int_t (name ^ ": failed") 0 s.Websim.Http.failed)
    [
      ( "university", uni_schema,
        Sitegen.University.site (Sitegen.University.build ()), 80, 60365 );
      ( "bibliography", Sitegen.Bibliography.schema,
        Sitegen.Bibliography.site (Sitegen.Bibliography.build ()), 208, 424995 );
      ( "catalog", Sitegen.Catalog.schema,
        Sitegen.Catalog.site (Sitegen.Catalog.build ()), 134, 119426 );
    ]

let test_passthrough_query_identity () =
  let _, site = uni_setup () in
  let plan =
    best_plan site
      "SELECT p.PName, p.Email FROM Professor p, ProfDept pd \
       WHERE p.PName = pd.PName AND pd.DName = 'Computer Science'"
  in
  let http = Websim.Http.connect site in
  let source = Eval.live_source uni_schema http in
  let _, stats = Eval.eval_counted uni_schema http source plan in
  check int_t "GETs as before the runtime" 6 stats.Websim.Http.gets;
  check int_t "bytes as before the runtime" 4849 stats.Websim.Http.bytes;
  let mv = Matview.materialize uni_schema (Websim.Http.connect site) in
  let report = Matview.query_counted mv plan in
  check int_t "light connections as before" 6 report.Matview.light_connections;
  check int_t "downloads as before" 0 report.Matview.downloads;
  check int_t "local hits as before" 6 report.Matview.local_hits

(* ------------------------------------------------------------------ *)
(* Exactness under injected transient faults                           *)
(* ------------------------------------------------------------------ *)

let faulty_fetcher ?(seed = 5) ?(fault_rate = 0.3) ?(retries = 3) site =
  let nm =
    Websim.Netmodel.create
      (Websim.Netmodel.config ~seed ~fault_rate ~max_consecutive:2 ())
  in
  Websim.Fetcher.create
    ~config:(Websim.Fetcher.config ~retries ())
    ~netmodel:nm
    (Websim.Http.connect site)

let eval_clean schema site plan =
  Eval.eval schema (Eval.live_source schema (Websim.Http.connect site)) plan

let eval_faulty schema site plan =
  let fetcher = faulty_fetcher site in
  let r = Eval.eval_fetched schema fetcher plan in
  (r.Eval.result, r.Eval.fetch)

(* Random conjunctive queries over the university view (reusing the
   equivalence suite's seeded generator): planning is fault-free by
   construction, and evaluating the best plan over a network with a
   30% transient failure rate must return the exact clean relation. *)
let prop_faulty_eval_exact =
  QCheck.Test.make ~name:"faulty evaluation with retries is exact" ~count:30
    Test_equivalence.query_arb (fun sql ->
      let _, site = uni_setup () in
      let plan = best_plan site sql in
      let clean = eval_clean uni_schema site plan in
      let faulty, _ = eval_faulty uni_schema site plan in
      Adm.Relation.equal (rows_sorted clean) (rows_sorted faulty))

(* The same exactness on the other two generated sites, on their
   canonical plans, with the retry overhead visible in the counters. *)
let test_faulty_eval_exact_all_sites () =
  let cases =
    [
      ( "bibliography", Sitegen.Bibliography.schema,
        Sitegen.Bibliography.site (Sitegen.Bibliography.build ()),
        [
          Sitegen.Bibliography.path1_all_conferences ();
          Sitegen.Bibliography.path3_direct_link ();
          Sitegen.Bibliography.path4_via_authors ();
        ] );
      ( "catalog", Sitegen.Catalog.schema,
        Sitegen.Catalog.site (Sitegen.Catalog.build ()),
        (let site = Sitegen.Catalog.site (Sitegen.Catalog.build ()) in
         let stats =
           Stats.of_instance
             (Websim.Crawler.crawl Sitegen.Catalog.schema (Websim.Http.connect site))
         in
         let outcome =
           Planner.plan_sql Sitegen.Catalog.schema stats Sitegen.Catalog.view
             "SELECT p.PName, p.Price FROM Product p WHERE p.Category = 'Audio'"
         in
         [ outcome.Planner.best.Planner.expr ]) );
    ]
  in
  List.iter
    (fun (name, schema, site, plans) ->
      List.iteri
        (fun i plan ->
          let clean = eval_clean schema site plan in
          let faulty, net = eval_faulty schema site plan in
          check bool_t (Fmt.str "%s plan %d exact under faults" name i) true
            (Adm.Relation.equal (rows_sorted clean) (rows_sorted faulty));
          (* bounded overhead: every retry is one extra attempt, and
             attempts never exceed requests * (retries + 1) *)
          check bool_t (Fmt.str "%s plan %d attempts bounded" name i) true
            (net.Websim.Fetcher.attempts
            <= net.Websim.Fetcher.requests * 4))
        plans)
    cases

(* ------------------------------------------------------------------ *)
(* Dangling links and the materialized view over a faulty network      *)
(* ------------------------------------------------------------------ *)

let test_dangling_skipped_identically () =
  let u, site = uni_setup () in
  let mv = Matview.materialize uni_schema (Websim.Http.connect site) in
  let victim_url = prof_url_at u 0 and other_url = prof_url_at u 1 in
  Websim.Site.tick site;
  Websim.Site.delete site victim_url;
  let source = Eval.live_source uni_schema (Websim.Http.connect site) in
  let rel =
    Eval.pages_relation uni_schema source ~scheme:"ProfPage" ~alias:"P"
      [ victim_url; other_url ]
  in
  check int_t "live evaluation skips the dangling URL" 1
    (Adm.Relation.cardinality rel);
  check bool_t "URLCheck skips the same URL" true
    (Matview.url_check mv ~scheme:"ProfPage" ~url:victim_url = None);
  check bool_t "URLCheck keeps the live URL" true
    (Matview.url_check mv ~scheme:"ProfPage" ~url:other_url <> None)

let test_matview_serves_stale_when_unreachable () =
  let u, site = uni_setup () in
  (* everything is down and the retry budget is zero: URLCheck cannot
     even ask, so it must serve the stored tuples rather than drop rows *)
  let dead =
    Websim.Netmodel.create
      (Websim.Netmodel.config ~seed:3 ~fault_rate:1.0 ~max_consecutive:4 ())
  in
  let dead_fetcher =
    Websim.Fetcher.create
      ~config:(Websim.Fetcher.config ~retries:0 ~breaker_threshold:0 ~cache_capacity:0 ())
      ~netmodel:dead
      (Websim.Http.connect site)
  in
  let mv = Matview.materialize uni_schema (Websim.Http.connect site) in
  let plan = best_plan site "SELECT p.PName, p.Rank FROM Professor p" in
  let clean = Matview.query mv plan in
  let mv_dead =
    Matview.materialize ~fetcher:dead_fetcher uni_schema (Websim.Http.connect site)
  in
  ignore u;
  (* materializing through the dead fetcher stores nothing... *)
  check int_t "dead materialize stores nothing" 0 (Matview.total_pages mv_dead);
  (* ...but a store built beforehand keeps answering over a dead network *)
  let mv2 =
    Matview.materialize uni_schema (Websim.Http.connect site)
  in
  let report2 = Matview.query_counted mv2 plan in
  check bool_t "baseline query has rows" true
    (Adm.Relation.cardinality clean > 0);
  check bool_t "pre-built store answers" true
    (Adm.Relation.equal (rows_sorted clean) (rows_sorted report2.Matview.result))

let test_offline_sweep_under_faults () =
  let u, site = uni_setup () in
  let mv = Matview.materialize uni_schema (Websim.Http.connect site) in
  let plan = best_plan site "SELECT p.PName, p.Rank FROM Professor p" in
  Websim.Site.tick site;
  Websim.Site.delete site (prof_url_at u 0);
  let _ = Matview.query_counted mv plan in
  let backlog = Matview.check_missing_backlog mv in
  check bool_t "backlog populated by the deletion" true (backlog > 0);
  let stored_before = Matview.total_pages mv in
  (* a sweep over a dead network cannot tell gone from down: nothing
     is purged and the backlog is kept for the next sweep *)
  let dead =
    Websim.Netmodel.create
      (Websim.Netmodel.config ~seed:3 ~fault_rate:1.0 ~max_consecutive:4 ())
  in
  let dead_fetcher =
    Websim.Fetcher.create
      ~config:(Websim.Fetcher.config ~retries:0 ~breaker_threshold:0 ())
      ~netmodel:dead
      (Websim.Http.connect site)
  in
  check int_t "nothing purged over a dead network" 0
    (Matview.offline_sweep ~via:dead_fetcher mv);
  check int_t "backlog kept for the next sweep" backlog
    (Matview.check_missing_backlog mv);
  check int_t "store intact" stored_before (Matview.total_pages mv);
  (* a merely flaky network retries its way to the truth: the
     genuinely deleted page is purged, false alarms are dropped *)
  let flaky =
    Websim.Netmodel.create
      (Websim.Netmodel.config ~seed:3 ~fault_rate:1.0 ~max_consecutive:2 ())
  in
  let flaky_fetcher =
    Websim.Fetcher.create
      ~config:(Websim.Fetcher.config ~retries:3 ())
      ~netmodel:flaky
      (Websim.Http.connect site)
  in
  let purged = Matview.offline_sweep ~via:flaky_fetcher mv in
  check bool_t "genuinely deleted page purged" true (purged >= 1);
  check int_t "backlog drained" 0 (Matview.check_missing_backlog mv);
  check bool_t "the sweep needed retries" true
    ((Websim.Fetcher.counters flaky_fetcher).Websim.Fetcher.retries > 0)

(* The store keeps answering while its fetcher's circuit breaker is
   Open: every URLCheck HEAD fast-fails as Unreachable, so the stored
   tuples are served stale — same rows as a clean query, zero network
   downloads, only fast-fails in the ledger. *)
let test_matview_stale_serve_breaker_open () =
  let _, site = uni_setup () in
  let nm = Websim.Netmodel.create (Websim.Netmodel.config ~seed:6 ()) in
  let fetcher =
    Websim.Fetcher.create
      ~config:(Websim.Fetcher.config ~cache_capacity:0 ())
      ~netmodel:nm
      (Websim.Http.connect site)
  in
  let mv = Matview.materialize ~fetcher uni_schema (Websim.Http.connect site) in
  let plan = best_plan site "SELECT p.PName, p.Rank FROM Professor p" in
  let clean = Matview.query mv plan in
  Websim.Fetcher.open_breaker fetcher ~for_ms:1e6;
  let fastfails_before =
    (Websim.Fetcher.counters fetcher).Websim.Fetcher.breaker_fastfails
  in
  let report = Matview.query_counted mv plan in
  check bool_t "stale rows = clean rows" true
    (Adm.Relation.equal (rows_sorted clean) (rows_sorted report.Matview.result));
  check int_t "no downloads through an open breaker" 0
    report.Matview.downloads;
  check bool_t "the checks fast-failed" true
    ((Websim.Fetcher.counters fetcher).Websim.Fetcher.breaker_fastfails
    > fastfails_before);
  check bool_t "breaker still open" true (Websim.Fetcher.breaker_open fetcher)

(* Backlogged pages survive an Open -> Half-open transition: a sweep
   while the breaker is Open purges nothing (every check is
   Unreachable), and once the cooldown elapses the half-open probe
   goes through and the sweep tells gone from down again. *)
let test_sweep_keeps_backlog_across_breaker_states () =
  let u, site = uni_setup () in
  let nm = Websim.Netmodel.create (Websim.Netmodel.config ~seed:6 ()) in
  let fetcher =
    Websim.Fetcher.create
      ~config:
        (Websim.Fetcher.config ~cache_capacity:0 ~breaker_cooldown_ms:500.0 ())
      ~netmodel:nm
      (Websim.Http.connect site)
  in
  let mv = Matview.materialize ~fetcher uni_schema (Websim.Http.connect site) in
  let plan = best_plan site "SELECT p.PName, p.Rank FROM Professor p" in
  Websim.Site.tick site;
  Websim.Site.delete site (prof_url_at u 0);
  let _ = Matview.query_counted mv plan in
  let backlog = Matview.check_missing_backlog mv in
  check bool_t "deletion backlogged" true (backlog > 0);
  let stored = Matview.total_pages mv in
  Websim.Fetcher.open_breaker fetcher ~for_ms:500.0;
  check int_t "open breaker: nothing purged" 0 (Matview.offline_sweep mv);
  check int_t "open breaker: backlog kept" backlog
    (Matview.check_missing_backlog mv);
  check int_t "open breaker: store intact" stored (Matview.total_pages mv);
  check bool_t "still open before the cooldown" true
    (Websim.Fetcher.breaker_open fetcher);
  (* past the cooldown the next request finds the breaker Half-open:
     the probe goes through, the 404 is definitive, the page purged *)
  Websim.Netmodel.advance nm 1000.0;
  check int_t "half-open sweep purges the deleted page" 1
    (Matview.offline_sweep mv);
  check int_t "backlog drained" 0 (Matview.check_missing_backlog mv);
  check bool_t "breaker closed by the successful probe" false
    (Websim.Fetcher.breaker_open fetcher)

(* ------------------------------------------------------------------ *)
(* Circuit breaker, cache, batching                                    *)
(* ------------------------------------------------------------------ *)

let test_breaker_trips_and_fastfails () =
  let u, site = uni_setup () in
  let nm =
    Websim.Netmodel.create
      (Websim.Netmodel.config ~seed:1 ~fault_rate:1.0 ~max_consecutive:6 ())
  in
  let f =
    Websim.Fetcher.create
      ~config:
        (Websim.Fetcher.config ~retries:0 ~breaker_threshold:2 ~cache_capacity:0 ())
      ~netmodel:nm
      (Websim.Http.connect site)
  in
  check bool_t "1st request dead" true
    (Websim.Fetcher.get f (prof_url_at u 0) = Websim.Fetcher.Unreachable);
  check bool_t "2nd request dead" true
    (Websim.Fetcher.get f (prof_url_at u 1) = Websim.Fetcher.Unreachable);
  check bool_t "breaker open after threshold" true (Websim.Fetcher.breaker_open f);
  let c = Websim.Fetcher.counters f in
  check int_t "tripped once" 1 c.Websim.Fetcher.breaker_trips;
  let attempts_before = c.Websim.Fetcher.attempts in
  check bool_t "open breaker fast-fails" true
    (Websim.Fetcher.get f (prof_url_at u 2) = Websim.Fetcher.Unreachable);
  check int_t "no wire attempt while open" attempts_before c.Websim.Fetcher.attempts;
  check bool_t "fast-fails counted" true (c.Websim.Fetcher.breaker_fastfails >= 1)

let test_lru_eviction () =
  let u, site = uni_setup () in
  let http = Websim.Http.connect site in
  let f =
    Websim.Fetcher.create ~config:(Websim.Fetcher.config ~cache_capacity:2 ()) http
  in
  ignore (Websim.Fetcher.get f (prof_url_at u 0));
  ignore (Websim.Fetcher.get f (prof_url_at u 1));
  ignore (Websim.Fetcher.get f (prof_url_at u 0)); (* hit, touches 0 *)
  ignore (Websim.Fetcher.get f (prof_url_at u 2)); (* evicts 1, the LRU *)
  ignore (Websim.Fetcher.get f (prof_url_at u 1)); (* miss again *)
  let c = Websim.Fetcher.counters f in
  check int_t "wire GETs" 4 (Websim.Http.stats http).Websim.Http.gets;
  check int_t "one cache hit" 1 c.Websim.Fetcher.cache_hits;
  check bool_t "evictions happened" true (c.Websim.Fetcher.cache_evictions >= 1)

let test_head_revalidation () =
  let u, site = uni_setup () in
  let http = Websim.Http.connect site in
  let f =
    Websim.Fetcher.create
      ~config:(Websim.Fetcher.config ~cache_capacity:8 ~revalidate_after:0 ())
      http
  in
  let url = prof_url_at u 0 in
  ignore (Websim.Fetcher.get f url);
  Websim.Site.tick site;
  ignore (Websim.Fetcher.get f url);
  let s = Websim.Http.stats http in
  check int_t "one GET: unchanged page served from cache" 1 s.Websim.Http.gets;
  check int_t "one revalidating HEAD" 1 s.Websim.Http.heads;
  check int_t "one revalidation counted" 1
    (Websim.Fetcher.counters f).Websim.Fetcher.revalidations;
  (* the page changes: the next revalidation must re-download *)
  Websim.Site.tick site;
  let promoted =
    Sitegen.University.promote_professor u
      ~p_name:(List.nth (Sitegen.University.profs u) 0).Sitegen.University.p_name
  in
  check bool_t "promotion applied" true promoted;
  Websim.Site.tick site;
  ignore (Websim.Fetcher.get f url);
  check int_t "changed page re-downloaded" 2 (Websim.Http.stats http).Websim.Http.gets

let test_batch_overlap_and_coalescing () =
  let u, site = uni_setup () in
  let urls = List.init 8 (prof_url_at u) in
  let mk window =
    let nm = Websim.Netmodel.create (Websim.Netmodel.config ~seed:9 ()) in
    Websim.Fetcher.create
      ~config:(Websim.Fetcher.config ~window ~cache_capacity:16 ())
      ~netmodel:nm
      (Websim.Http.connect site)
  in
  let f1 = mk 1 and f8 = mk 8 in
  ignore (Websim.Fetcher.get_batch f1 urls);
  ignore (Websim.Fetcher.get_batch f8 urls);
  check bool_t "window 8 overlaps latencies at least 4x" true
    (Websim.Fetcher.elapsed_ms f1 >= 4.0 *. Websim.Fetcher.elapsed_ms f8);
  let f = mk 8 in
  ignore (Websim.Fetcher.get_batch f (urls @ urls));
  check int_t "duplicates coalesced" 8
    (Websim.Fetcher.counters f).Websim.Fetcher.coalesced;
  check int_t "one GET per distinct URL" 8
    (Websim.Http.stats (Websim.Fetcher.http f)).Websim.Http.gets

(* ------------------------------------------------------------------ *)
(* Extended HTTP stats (HEAD bytes, failures, truncated transfers)     *)
(* ------------------------------------------------------------------ *)

let test_http_extended_stats () =
  let _, site = uni_setup () in
  let http = Websim.Http.connect site in
  let before = Websim.Http.snapshot http in
  ignore (Websim.Http.head http Sitegen.University.home_url);
  ignore (Websim.Http.head http "/nonexistent");
  Websim.Http.record_failed http;
  let full =
    match Websim.Http.get http Sitegen.University.home_url with
    | Some (b, _) -> b
    | None -> Alcotest.fail "home page exists"
  in
  let partial =
    match Websim.Http.get_partial http Sitegen.University.home_url ~keep:0.5 with
    | Some (b, _) -> b
    | None -> Alcotest.fail "home page exists"
  in
  let d = Websim.Http.diff ~before ~after:(Websim.Http.snapshot http) in
  check int_t "both HEADs counted" 2 d.Websim.Http.heads;
  check int_t "HEAD bytes accrue even on 404"
    (2 * Websim.Http.head_overhead_bytes)
    d.Websim.Http.head_bytes;
  check int_t "one 404" 1 d.Websim.Http.not_found;
  check int_t "one failed exchange" 1 d.Websim.Http.failed;
  check int_t "partial transfer still counts as a GET" 2 d.Websim.Http.gets;
  check bool_t "truncated body is a proper prefix" true
    (String.length partial < String.length full
    && String.equal partial (String.sub full 0 (String.length partial)));
  check int_t "only received bytes accrue"
    (String.length full + String.length partial)
    d.Websim.Http.bytes

let suite =
  ( "netsim",
    [
      Alcotest.test_case "netmodel: seeded determinism" `Quick
        test_netmodel_determinism;
      Alcotest.test_case "netmodel: episodes are transient by construction"
        `Quick test_episode_bounds;
      Alcotest.test_case "pass-through: crawl counters identical" `Quick
        test_passthrough_crawl_identity;
      Alcotest.test_case "pass-through: query + matview counters identical"
        `Quick test_passthrough_query_identity;
      QCheck_alcotest.to_alcotest prop_faulty_eval_exact;
      Alcotest.test_case "faults: exact results on all sites" `Quick
        test_faulty_eval_exact_all_sites;
      Alcotest.test_case "dangling links skipped identically" `Quick
        test_dangling_skipped_identically;
      Alcotest.test_case "matview: stale service over a dead network" `Quick
        test_matview_serves_stale_when_unreachable;
      Alcotest.test_case "matview: off-line sweep under faults" `Quick
        test_offline_sweep_under_faults;
      Alcotest.test_case "matview: stale service while breaker open" `Quick
        test_matview_stale_serve_breaker_open;
      Alcotest.test_case "matview: sweep backlog across open/half-open" `Quick
        test_sweep_keeps_backlog_across_breaker_states;
      Alcotest.test_case "breaker: trips and fast-fails" `Quick
        test_breaker_trips_and_fastfails;
      Alcotest.test_case "cache: bounded LRU eviction" `Quick test_lru_eviction;
      Alcotest.test_case "cache: HEAD revalidation" `Quick test_head_revalidation;
      Alcotest.test_case "batch: window overlap and coalescing" `Quick
        test_batch_overlap_and_coalescing;
      Alcotest.test_case "http: HEAD bytes, failures, truncation" `Quick
        test_http_extended_stats;
    ] )
