(* Tests for statistics, the cost model, the SQL front end, view
   expansion and the plan-selection algorithm. The key invariant:
   every candidate plan the planner produces computes the same
   relation, and the paper's Examples 7.1 / 7.2 pick the documented
   winners. *)

open Webviews

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

let schema = Sitegen.University.schema
let registry = Sitegen.University.view

let uni = lazy (Sitegen.University.build ())

let instance =
  lazy
    (let u = Lazy.force uni in
     let http = Websim.Http.connect (Sitegen.University.site u) in
     Websim.Crawler.crawl schema http)

let stats = lazy (Stats.of_instance (Lazy.force instance))

let eval e = Eval.eval schema (Eval.instance_source (Lazy.force instance)) e

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_cardinalities () =
  let s = Lazy.force stats in
  check int_t "|CoursePage|" 50 (Stats.cardinality s "CoursePage");
  check int_t "|ProfPage|" 20 (Stats.cardinality s "ProfPage");
  check int_t "|DeptPage|" 3 (Stats.cardinality s "DeptPage")

let test_stats_fanout_distinct () =
  let s = Lazy.force stats in
  check bool_t "prof list fanout" true
    (Float.abs (Stats.fanout s "ProfListPage.ProfList" -. 20.0) < 0.001);
  check int_t "distinct sessions" 3 (Stats.distinct s "CoursePage.Session");
  check bool_t "selectivity" true
    (Float.abs (Stats.selectivity s "CoursePage.Session" -. (1.0 /. 3.0)) < 1e-9)

let test_stats_repetition () =
  let s = Lazy.force stats in
  (* ToCourse from SessionPage.CourseList: 50 items, 50 distinct → r=1 *)
  let r = Stats.repetition s "SessionPage" [ "CourseList"; "ToCourse" ] in
  check bool_t "repetition ≈ 1" true (Float.abs (r -. 1.0) < 0.01);
  (* ToProf in CoursePage: 50 pages, 18 distinct instructors → r ≈ 2.8 *)
  let r2 = Stats.repetition s "CoursePage" [ "ToProf" ] in
  let expected = 50.0 /. float_of_int (Stats.distinct s "CoursePage.ToProf") in
  check bool_t "repetition of repeated links" true (Float.abs (r2 -. expected) < 0.01)

let test_stats_page_bytes () =
  let s = Lazy.force stats in
  (* exact average page size collected from the crawl *)
  let u = Lazy.force uni in
  let total, n =
    List.fold_left
      (fun (total, n) (p : Sitegen.University.prof) ->
        match
          Websim.Site.find (Sitegen.University.site u)
            (Sitegen.University.prof_url p.Sitegen.University.p_name)
        with
        | Some page -> (total + String.length page.Websim.Site.body, n + 1)
        | None -> (total, n))
      (0, 0) (Sitegen.University.profs u)
  in
  let expected = float_of_int total /. float_of_int n in
  check bool_t "avg professor page size" true
    (Float.abs (Stats.page_bytes s "ProfPage" -. expected) < 0.5)

(* ------------------------------------------------------------------ *)
(* Cost                                                                *)
(* ------------------------------------------------------------------ *)

let profs_nav =
  Nalg.follow
    (Nalg.unnest (Nalg.entry "ProfListPage") "ProfListPage.ProfList")
    "ProfListPage.ProfList.ToProf" ~scheme:"ProfPage"

let test_cost_entry () =
  let s = Lazy.force stats in
  check bool_t "entry costs 1" true (Cost.cost schema s (Nalg.entry "ProfListPage") = 1.0)

let test_cost_navigation () =
  let s = Lazy.force stats in
  (* 1 (entry) + 20 (distinct professor links) *)
  check bool_t "profs nav" true (Float.abs (Cost.cost schema s profs_nav -. 21.0) < 0.01)

let test_cost_selection_cuts_navigation () =
  let s = Lazy.force stats in
  let selective =
    Nalg.follow
      (Nalg.select
         [ Pred.eq_const "DeptListPage.DeptList.DName" (Adm.Value.text "Computer Science") ]
         (Nalg.unnest (Nalg.entry "DeptListPage") "DeptListPage.DeptList"))
      "DeptListPage.DeptList.ToDept" ~scheme:"DeptPage"
  in
  (* 1 + 3·(1/3) = 2 *)
  check bool_t "selective navigation" true
    (Float.abs (Cost.cost schema s selective -. 2.0) < 0.01)

let test_cost_example_72_shape () =
  (* the paper's Example 7.2 arithmetic: the chase plan costs about
     1 + 1 + |ProfPage|/|DeptPage| + |CoursePage|/|DeptPage| ≈ 25.4
     at 50 courses / 20 profs / 3 depts *)
  let s = Lazy.force stats in
  let chase =
    Nalg.follow
      (Nalg.unnest
         (Nalg.follow
            (Nalg.unnest
               (Nalg.follow
                  (Nalg.select
                     [
                       Pred.eq_const "DeptListPage.DeptList.DName"
                         (Adm.Value.text "Computer Science");
                     ]
                     (Nalg.unnest (Nalg.entry "DeptListPage") "DeptListPage.DeptList"))
                  "DeptListPage.DeptList.ToDept" ~scheme:"DeptPage")
               "DeptPage.ProfList")
            "DeptPage.ProfList.ToProf" ~scheme:"ProfPage")
         "ProfPage.CourseList")
      "ProfPage.CourseList.ToCourse" ~scheme:"CoursePage"
  in
  let c = Cost.cost schema s chase in
  check bool_t "paper ballpark (≈23–27)" true (c > 20.0 && c < 30.0)

let test_cardinality_estimates () =
  let s = Lazy.force stats in
  check bool_t "nav card = 20" true
    (Float.abs (Cost.cardinality schema s profs_nav -. 20.0) < 0.01);
  let sel =
    Nalg.select [ Pred.eq_const "ProfPage.Rank" (Adm.Value.text "Full") ] profs_nav
  in
  check bool_t "selection shrinks card" true
    (Cost.cardinality schema s sel < 20.0)

(* ------------------------------------------------------------------ *)
(* SQL front end                                                       *)
(* ------------------------------------------------------------------ *)

let test_sql_lexer () =
  let toks = Sql_lexer.tokenize "SELECT a.B FROM R a WHERE a.B <> 'x y' AND a.C >= 10" in
  check int_t "token count" 20 (List.length toks)

let test_sql_parse_basic () =
  let q = Sql_parser.parse registry "SELECT p.PName FROM Professor p WHERE p.Rank = 'Full'" in
  check Alcotest.(list string_t) "select" [ "p.PName" ] q.Conjunctive.select;
  check int_t "one source" 1 (List.length q.Conjunctive.from);
  check int_t "one condition" 1 (List.length q.Conjunctive.where)

let test_sql_star_and_unqualified () =
  let q = Sql_parser.parse registry "SELECT * FROM Dept" in
  check Alcotest.(list string_t) "star expands" [ "Dept.DName"; "Dept.Address" ]
    q.Conjunctive.select;
  let q2 = Sql_parser.parse registry "SELECT Address FROM Dept WHERE DName = 'x'" in
  check Alcotest.(list string_t) "unqualified resolves" [ "Dept.Address" ]
    q2.Conjunctive.select

let test_sql_errors () =
  let fails input =
    match Sql_parser.parse registry input with
    | exception Sql_parser.Parse_error _ -> true
    | _ -> false
  in
  check bool_t "unknown relation" true (fails "SELECT x FROM Nope");
  check bool_t "unknown attribute" true (fails "SELECT p.Nope FROM Professor p");
  check bool_t "ambiguous attribute" true
    (fails "SELECT PName FROM Professor p, ProfDept d");
  check bool_t "syntax error" true (fails "SELECT FROM Professor");
  check bool_t "unterminated string" true
    (fails "SELECT p.PName FROM Professor p WHERE p.Rank = 'oops")

let test_sql_to_algebra_shape () =
  let q =
    Sql_parser.parse registry
      "SELECT p.PName FROM Professor p, ProfDept d WHERE p.PName = d.PName AND d.DName = 'CS'"
  in
  match Conjunctive.to_algebra q with
  | Nalg.Project ([ "p.PName" ], Nalg.Select (_, Nalg.Join (keys, _, _))) ->
    check int_t "join keys" 1 (List.length keys)
  | e -> Alcotest.failf "unexpected shape: %s" (Nalg.to_string e)

(* ------------------------------------------------------------------ *)
(* View expansion (rule 1)                                             *)
(* ------------------------------------------------------------------ *)

let test_expand_cardinality () =
  (* CourseInstructor has 2 default navigations, Professor 1: a join
     of both expands into 2 plans *)
  let q =
    Nalg.join
      [ ("p.PName", "ci.PName") ]
      (Nalg.external_ ~alias:"p" "Professor")
      (Nalg.external_ ~alias:"ci" "CourseInstructor")
  in
  let expansions = View.expand registry q in
  check int_t "2 expansions" 2 (List.length expansions);
  List.iter
    (fun e -> check bool_t "computable" true (Nalg.is_computable e))
    expansions

let test_expand_renames_attrs () =
  let q =
    Nalg.project [ "p.Rank" ] (Nalg.external_ ~alias:"p" "Professor")
  in
  match View.expand registry q with
  | [ Nalg.Project ([ attr ], _) ] ->
    check string_t "bound to plan attribute" "ProfPage.Rank" attr
  | _ -> Alcotest.fail "expansion shape"

let test_expand_self_join_aliases () =
  (* two occurrences of Professor must get disjoint aliases *)
  let q =
    Nalg.join
      [ ("a.PName", "b.PName") ]
      (Nalg.external_ ~alias:"a" "Professor")
      (Nalg.external_ ~alias:"b" "Professor")
  in
  match View.expand registry q with
  | [ e ] ->
    let aliases = Nalg.aliases e in
    check int_t "four distinct page occurrences" 4
      (List.length (List.sort_uniq String.compare aliases))
  | other -> Alcotest.failf "expected 1 expansion, got %d" (List.length other)

(* ------------------------------------------------------------------ *)
(* Planner end-to-end                                                  *)
(* ------------------------------------------------------------------ *)

let all_plans_agree sql =
  let outcome = Planner.plan_sql schema (Lazy.force stats) registry sql in
  let results =
    List.map
      (fun (p : Planner.plan) ->
        Adm.Relation.sort_rows (Planner.rename_output outcome (eval p.Planner.expr)))
      outcome.Planner.candidates
  in
  match results with
  | [] -> Alcotest.fail "no candidates"
  | first :: rest ->
    List.iteri
      (fun i r ->
        if not (Adm.Relation.equal first r) then
          Alcotest.failf "candidate %d disagrees for %s" (i + 1) sql)
      rest;
    (outcome, first)

let test_planner_simple_query () =
  let outcome, result = all_plans_agree "SELECT d.DName, d.Address FROM Dept d" in
  check int_t "3 depts" 3 (Adm.Relation.cardinality result);
  check bool_t "cost sane" true (outcome.Planner.best.Planner.cost >= 2.0)

let test_planner_example_71 () =
  (* pointer-join must beat pointer-chase (paper, Example 7.1) *)
  let sql =
    "SELECT c.CName, c.Description FROM Professor p, CourseInstructor ci, Course c \
     WHERE p.PName = ci.PName AND ci.CName = c.CName AND c.Session = 'Fall' AND p.Rank = 'Full'"
  in
  let outcome, result = all_plans_agree sql in
  let best = outcome.Planner.best.Planner.expr in
  (* the best plan joins two pointer sets below a follow *)
  let is_pointer_join =
    Nalg.fold
      (fun acc n ->
        acc || match n with Nalg.Follow { src = Nalg.Join _; _ } -> true | _ -> false)
      false best
  in
  check bool_t "pointer join wins 7.1" true is_pointer_join;
  (* sanity: correct answer against ground truth *)
  let u = Lazy.force uni in
  let expected =
    List.filter
      (fun (c : Sitegen.University.course) ->
        String.equal c.Sitegen.University.c_session "Fall"
        && List.exists
             (fun (p : Sitegen.University.prof) ->
               String.equal p.Sitegen.University.p_name c.Sitegen.University.instructor
               && String.equal p.Sitegen.University.rank "Full")
             (Sitegen.University.profs u))
      (Sitegen.University.courses u)
  in
  check int_t "ground truth rows" (List.length expected) (Adm.Relation.cardinality result)

let test_planner_example_72 () =
  (* pointer-chase must beat pointer-join (paper, Example 7.2) *)
  let sql =
    "SELECT p.PName, p.Email FROM Course c, CourseInstructor ci, Professor p, ProfDept pd \
     WHERE c.CName = ci.CName AND ci.PName = p.PName AND p.PName = pd.PName \
     AND pd.DName = 'Computer Science' AND c.Type = 'Graduate'"
  in
  let outcome, result = all_plans_agree sql in
  let best = outcome.Planner.best.Planner.expr in
  check bool_t "no join in the winning plan (pure chase)" true
    (Nalg.fold
       (fun acc n -> acc && match n with Nalg.Join _ -> false | _ -> true)
       true best);
  check bool_t "chase starts from the dept list" true
    (List.mem "DeptListPage" (Nalg.aliases best));
  let u = Lazy.force uni in
  let expected =
    List.filter
      (fun (p : Sitegen.University.prof) ->
        String.equal p.Sitegen.University.p_dept "Computer Science"
        && List.exists
             (fun (c : Sitegen.University.course) ->
               String.equal c.Sitegen.University.instructor p.Sitegen.University.p_name
               && String.equal c.Sitegen.University.c_type "Graduate")
             (Sitegen.University.courses u))
      (Sitegen.University.profs u)
  in
  check int_t "ground truth rows" (List.length expected) (Adm.Relation.cardinality result)

let test_planner_cost_orders_match_measured () =
  (* the estimated order of the top plans must match measured accesses
     for the 7.2 query *)
  let sql =
    "SELECT p.PName FROM Professor p, ProfDept pd WHERE p.PName = pd.PName \
     AND pd.DName = 'Computer Science'"
  in
  let outcome = Planner.plan_sql schema (Lazy.force stats) registry sql in
  let u = Lazy.force uni in
  let measured (p : Planner.plan) =
    let http = Websim.Http.connect (Sitegen.University.site u) in
    let source = Eval.live_source schema http in
    let _ = Eval.eval schema source p.Planner.expr in
    (Websim.Http.stats http).Websim.Http.gets
  in
  match outcome.Planner.candidates with
  | best :: _ ->
    let worst = List.nth outcome.Planner.candidates (List.length outcome.Planner.candidates - 1) in
    check bool_t "cheapest plan downloads fewer pages than the costliest" true
      (measured best <= measured worst)
  | [] -> Alcotest.fail "no candidates"

let test_planner_rejects_unknown () =
  check bool_t "parse error surfaces" true
    (match Planner.plan_sql schema (Lazy.force stats) registry "SELECT x FROM Nope" with
    | exception Sql_parser.Parse_error _ -> true
    | _ -> false)

let test_planner_figure2_query () =
  (* "Name and Description of courses held by members of the CS
     department" — the Figure 2 query *)
  let sql =
    "SELECT c.CName, c.Description FROM Course c, CourseInstructor ci, ProfDept pd \
     WHERE c.CName = ci.CName AND ci.PName = pd.PName AND pd.DName = 'Computer Science'"
  in
  let _, result = all_plans_agree sql in
  let u = Lazy.force uni in
  let expected =
    List.filter
      (fun (c : Sitegen.University.course) ->
        List.exists
          (fun (p : Sitegen.University.prof) ->
            String.equal p.Sitegen.University.p_name c.Sitegen.University.instructor
            && String.equal p.Sitegen.University.p_dept "Computer Science")
          (Sitegen.University.profs u))
      (Sitegen.University.courses u)
  in
  check int_t "figure 2 rows" (List.length expected) (Adm.Relation.cardinality result)

let suite =
  ( "planner",
    [
      Alcotest.test_case "stats cardinalities" `Quick test_stats_cardinalities;
      Alcotest.test_case "stats fanout/distinct" `Quick test_stats_fanout_distinct;
      Alcotest.test_case "stats repetition" `Quick test_stats_repetition;
      Alcotest.test_case "stats page bytes" `Quick test_stats_page_bytes;
      Alcotest.test_case "cost entry" `Quick test_cost_entry;
      Alcotest.test_case "cost navigation" `Quick test_cost_navigation;
      Alcotest.test_case "cost selective navigation" `Quick test_cost_selection_cuts_navigation;
      Alcotest.test_case "cost example 7.2 ballpark" `Quick test_cost_example_72_shape;
      Alcotest.test_case "cardinality estimates" `Quick test_cardinality_estimates;
      Alcotest.test_case "sql lexer" `Quick test_sql_lexer;
      Alcotest.test_case "sql parse basic" `Quick test_sql_parse_basic;
      Alcotest.test_case "sql star/unqualified" `Quick test_sql_star_and_unqualified;
      Alcotest.test_case "sql errors" `Quick test_sql_errors;
      Alcotest.test_case "sql to algebra" `Quick test_sql_to_algebra_shape;
      Alcotest.test_case "expand cardinality" `Quick test_expand_cardinality;
      Alcotest.test_case "expand renames attrs" `Quick test_expand_renames_attrs;
      Alcotest.test_case "expand self-join aliases" `Quick test_expand_self_join_aliases;
      Alcotest.test_case "planner simple query" `Quick test_planner_simple_query;
      Alcotest.test_case "planner example 7.1" `Quick test_planner_example_71;
      Alcotest.test_case "planner example 7.2" `Quick test_planner_example_72;
      Alcotest.test_case "planner cost vs measured" `Quick test_planner_cost_orders_match_measured;
      Alcotest.test_case "planner rejects unknown" `Quick test_planner_rejects_unknown;
      Alcotest.test_case "planner figure 2 query" `Quick test_planner_figure2_query;
    ] )
