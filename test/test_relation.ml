(* Unit and property tests for Adm.Relation. *)

open Adm

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let v_t s = Value.text s
let v_i i = Value.Int i

let people =
  Relation.make [ "Name"; "Age"; "City" ]
    [
      [ ("Name", v_t "ada"); ("Age", v_i 36); ("City", v_t "london") ];
      [ ("Name", v_t "alan"); ("Age", v_i 41); ("City", v_t "london") ];
      [ ("Name", v_t "grace"); ("Age", v_i 85); ("City", v_t "arlington") ];
    ]

let cities =
  Relation.make [ "CName"; "Country" ]
    [
      [ ("CName", v_t "london"); ("Country", v_t "uk") ];
      [ ("CName", v_t "arlington"); ("Country", v_t "usa") ];
      [ ("CName", v_t "paris"); ("Country", v_t "france") ];
    ]

let nested =
  Relation.make [ "Dept"; "Profs" ]
    [
      [
        ("Dept", v_t "cs");
        ( "Profs",
          Value.Rows [ [ ("P", v_t "ada") ]; [ ("P", v_t "alan") ] ] );
      ];
      [ ("Dept", v_t "math"); ("Profs", Value.Rows [ [ ("P", v_t "grace") ] ]) ];
      [ ("Dept", v_t "empty"); ("Profs", Value.Rows []) ];
    ]

let test_make_pads () =
  let r = Relation.make [ "A"; "B" ] [ [ ("A", v_i 1) ] ] in
  match Relation.rows r with
  | [ t ] -> check bool_t "padded with Null" true (Value.find t "B" = Some Value.Null)
  | _ -> Alcotest.fail "expected one row"

let test_project () =
  let r = Relation.project [ "City" ] people in
  check int_t "distinct cities" 2 (Relation.cardinality r);
  check Alcotest.(list string) "header" [ "City" ] (Relation.attrs r);
  let r2 = Relation.project ~distinct_rows:false [ "City" ] people in
  check int_t "non-distinct keeps dups" 3 (Relation.cardinality r2)

let test_project_unknown () =
  Alcotest.check_raises "unknown attr"
    (Invalid_argument "Relation: unknown attribute \"Zed\" (have: Name, Age, City)")
    (fun () -> ignore (Relation.project [ "Zed" ] people))

let test_select () =
  let r =
    Relation.select
      (fun t -> Value.find t "City" = Some (v_t "london"))
      people
  in
  check int_t "two londoners" 2 (Relation.cardinality r)

let test_equi_join () =
  let r = Relation.equi_join [ ("City", "CName") ] people cities in
  check int_t "joined rows" 3 (Relation.cardinality r);
  check bool_t "country attached" true
    (List.for_all (fun t -> Value.find t "Country" <> None) (Relation.rows r));
  check Alcotest.(list string) "header concat"
    [ "Name"; "Age"; "City"; "CName"; "Country" ]
    (Relation.attrs r)

let test_join_null_keys () =
  let with_null =
    Relation.make [ "Name"; "City" ] [ [ ("Name", v_t "x"); ("City", Value.Null) ] ]
  in
  let r = Relation.equi_join [ ("City", "CName") ] with_null cities in
  check int_t "null key never matches" 0 (Relation.cardinality r)

(* Regression: join keys are structural, not string-rendered — values
   of different types must never meet, even when they print alike. *)
let test_join_no_type_confusion () =
  let l =
    Relation.make [ "A" ]
      [ [ ("A", v_i 1) ]; [ ("A", v_t "1") ]; [ ("A", Value.link "1") ];
        [ ("A", Value.Bool true) ] ]
  in
  let join v =
    Relation.cardinality
      (Relation.equi_join [ ("A", "B") ] l (Relation.make [ "B" ] [ [ ("B", v) ] ]))
  in
  check int_t "Int 1 matches only Int 1" 1 (join (v_i 1));
  check int_t "Text \"1\" matches only Text \"1\"" 1 (join (v_t "1"));
  check int_t "Link \"1\" matches only Link \"1\"" 1 (join (Value.link "1"));
  check int_t "Text \"true\" matches nothing" 0 (join (v_t "true"))

let test_positional_access () =
  let r = Relation.of_arrays [ "A"; "B" ] [ [| v_i 1; v_t "x" |]; [| v_i 2; v_t "y" |] ] in
  check (Alcotest.option int_t) "offset" (Some 1) (Relation.offset_opt r "B");
  check (Alcotest.option int_t) "no offset" None (Relation.offset_opt r "Z");
  let f = Relation.filter_rows (fun row -> row.(0) = v_i 2) r in
  check int_t "filter_rows" 1 (Relation.cardinality f);
  check bool_t "rows round-trip" true
    (Relation.equal r (Relation.make [ "A"; "B" ] (Relation.rows r)));
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Relation.of_arrays: row has 1 slots, header has 2")
    (fun () -> ignore (Relation.of_arrays [ "A"; "B" ] [ [| v_i 1 |] ]))

let test_join_ambiguous () =
  Alcotest.check_raises "ambiguous attribute"
    (Invalid_argument "Relation.equi_join: ambiguous attribute \"Name\"")
    (fun () -> ignore (Relation.equi_join [ ("Age", "Age") ]
                         people
                         (Relation.make [ "Name"; "Age" ] [])))

let test_unnest () =
  let r = Relation.unnest "Profs" nested in
  check int_t "unnested rows" 3 (Relation.cardinality r);
  check bool_t "inner attr qualified" true (Relation.has_attr r "Profs.P");
  check bool_t "list attr gone" false (Relation.has_attr r "Profs");
  (* empty lists drop their parent, as in the standard unnest *)
  check bool_t "empty dept gone" true
    (List.for_all
       (fun t -> Value.find t "Dept" <> Some (v_t "empty"))
       (Relation.rows r))

let test_unnest_non_list () =
  Alcotest.check_raises "unnest of atom"
    (Invalid_argument "Relation.unnest: attribute \"Name\" is text, not nested rows")
    (fun () -> ignore (Relation.unnest "Name" people))

let test_union_difference () =
  let r1 = Relation.project [ "City" ] people in
  let r2 = Relation.make [ "City" ] [ [ ("City", v_t "paris") ] ] in
  let u = Relation.union r1 r2 in
  check int_t "union" 3 (Relation.cardinality u);
  let d = Relation.difference u r2 in
  check int_t "difference" 2 (Relation.cardinality d);
  let u2 = Relation.union u u in
  check int_t "union is idempotent" 3 (Relation.cardinality u2)

let test_rename_prefix () =
  let r = Relation.rename_attr ~from:"Name" ~into:"N" people in
  check bool_t "renamed" true (Relation.has_attr r "N");
  let p = Relation.prefix_attrs "P" people in
  check Alcotest.(list string) "prefixed" [ "P.Name"; "P.Age"; "P.City" ]
    (Relation.attrs p)

let test_distinct_count_column () =
  check int_t "distinct cities" 2 (Relation.distinct_count "City" people);
  check int_t "column length" 3 (List.length (Relation.column "Age" people))

let test_nest_inverts_unnest () =
  let flat = Relation.unnest "Profs" nested in
  let renested = Relation.nest ~into:"Profs" flat in
  (* rows with empty nested lists are lost by unnest, as usual *)
  let without_empty =
    Relation.select
      (fun t -> Value.find t "Profs" <> Some (Value.Rows []))
      nested
  in
  check bool_t "nest ∘ unnest = id (minus empties)" true
    (Relation.equal (Relation.sort_rows renested) (Relation.sort_rows without_empty))

let test_nest_groups () =
  let r =
    Relation.make [ "City"; "P.Name" ]
      [
        [ ("City", v_t "london"); ("P.Name", v_t "ada") ];
        [ ("City", v_t "london"); ("P.Name", v_t "alan") ];
        [ ("City", v_t "arlington"); ("P.Name", v_t "grace") ];
      ]
  in
  let nested = Relation.nest ~into:"P" r in
  check int_t "two groups" 2 (Relation.cardinality nested);
  match
    List.find_opt
      (fun t -> Value.find t "City" = Some (v_t "london"))
      (Relation.rows nested)
  with
  | Some t -> (
    match Value.find t "P" with
    | Some (Value.Rows inner) -> check int_t "london has two" 2 (List.length inner)
    | _ -> Alcotest.fail "nested attribute missing")
  | None -> Alcotest.fail "london group missing"

let test_nest_requires_prefix () =
  Alcotest.check_raises "no matching attributes"
    (Invalid_argument "Relation.nest: no attributes to nest") (fun () ->
      ignore (Relation.nest ~into:"Zed" people))

let test_unnest_expect_keeps_header () =
  let empty = Relation.make [ "Dept"; "Profs" ] [] in
  let r = Relation.unnest ~expect:[ "Profs.P" ] "Profs" empty in
  check bool_t "expected attr in header" true (Relation.has_attr r "Profs.P")

let test_cross () =
  let r = Relation.cross people cities in
  check int_t "cartesian" 9 (Relation.cardinality r)

let test_equal_modulo_order () =
  let r1 = Relation.make [ "A" ] [ [ ("A", v_i 1) ]; [ ("A", v_i 2) ] ] in
  let r2 = Relation.make [ "A" ] [ [ ("A", v_i 2) ]; [ ("A", v_i 1) ] ] in
  check bool_t "order-insensitive equal" true (Relation.equal r1 r2)

(* Streaming interface: the row sequences the cursor executor is
   built on must round-trip losslessly through a relation. *)

let test_seq_roundtrip () =
  let back = Relation.of_seq (Relation.attrs people) (Relation.to_seq people) in
  check bool_t "of_seq ∘ to_seq = id" true (Relation.equal people back)

let test_of_seq_empty_keeps_header () =
  let r = Relation.of_seq [ "A"; "B" ] Seq.empty in
  check int_t "no rows" 0 (Relation.cardinality r);
  check bool_t "header kept" true (Relation.has_attr r "B")

let test_row_batches () =
  let batches = List.of_seq (Relation.row_batches 2 people) in
  check int_t "3 rows in batches of 2" 2 (List.length batches);
  check bool_t "every batch non-empty and within size" true
    (List.for_all (fun b -> b <> [] && List.length b <= 2) batches);
  let back = Relation.of_seq (Relation.attrs people) (List.to_seq (List.concat batches)) in
  check bool_t "concatenated batches rebuild the relation" true
    (Relation.equal people back)

(* Properties. *)

let small_rel_gen =
  QCheck.Gen.(
    let row = map (fun (a, b) -> [ ("A", Value.Int a); ("B", Value.Int b) ])
        (pair (int_bound 5) (int_bound 5)) in
    map (Relation.make [ "A"; "B" ]) (list_size (int_bound 15) row))

let small_rel_arb = QCheck.make ~print:(Fmt.str "%a" Relation.pp) small_rel_gen

let prop_distinct_idempotent =
  QCheck.Test.make ~name:"distinct is idempotent" ~count:200 small_rel_arb (fun r ->
      let d = Relation.distinct r in
      Relation.cardinality (Relation.distinct d) = Relation.cardinality d)

let prop_project_shrinks =
  QCheck.Test.make ~name:"projection never grows" ~count:200 small_rel_arb (fun r ->
      Relation.cardinality (Relation.project [ "A" ] r) <= max 1 (Relation.cardinality r))

let prop_join_self_key =
  QCheck.Test.make ~name:"self equi-join on key superset of distinct" ~count:200
    small_rel_arb (fun r ->
      let d = Relation.distinct r in
      let renamed =
        Relation.rename_attr ~from:"A" ~into:"A2"
          (Relation.rename_attr ~from:"B" ~into:"B2" d)
      in
      let j = Relation.equi_join [ ("A", "A2"); ("B", "B2") ] d renamed in
      Relation.cardinality j = Relation.cardinality d)

let prop_select_monotone =
  QCheck.Test.make ~name:"selection never grows" ~count:200 small_rel_arb (fun r ->
      Relation.cardinality (Relation.select (fun t -> Value.find t "A" = Some (Value.Int 1)) r)
      <= Relation.cardinality r)

let suite =
  ( "relation",
    [
      Alcotest.test_case "make pads" `Quick test_make_pads;
      Alcotest.test_case "project" `Quick test_project;
      Alcotest.test_case "project unknown" `Quick test_project_unknown;
      Alcotest.test_case "select" `Quick test_select;
      Alcotest.test_case "equi join" `Quick test_equi_join;
      Alcotest.test_case "join null keys" `Quick test_join_null_keys;
      Alcotest.test_case "join no type confusion" `Quick test_join_no_type_confusion;
      Alcotest.test_case "positional access" `Quick test_positional_access;
      Alcotest.test_case "join ambiguous" `Quick test_join_ambiguous;
      Alcotest.test_case "unnest" `Quick test_unnest;
      Alcotest.test_case "unnest non-list" `Quick test_unnest_non_list;
      Alcotest.test_case "union/difference" `Quick test_union_difference;
      Alcotest.test_case "rename/prefix" `Quick test_rename_prefix;
      Alcotest.test_case "distinct count/column" `Quick test_distinct_count_column;
      Alcotest.test_case "nest inverts unnest" `Quick test_nest_inverts_unnest;
      Alcotest.test_case "nest groups" `Quick test_nest_groups;
      Alcotest.test_case "nest requires prefix" `Quick test_nest_requires_prefix;
      Alcotest.test_case "unnest expect" `Quick test_unnest_expect_keeps_header;
      Alcotest.test_case "cross" `Quick test_cross;
      Alcotest.test_case "equal modulo order" `Quick test_equal_modulo_order;
      Alcotest.test_case "seq roundtrip" `Quick test_seq_roundtrip;
      Alcotest.test_case "of_seq empty header" `Quick test_of_seq_empty_keeps_header;
      Alcotest.test_case "row batches" `Quick test_row_batches;
      QCheck_alcotest.to_alcotest prop_distinct_idempotent;
      QCheck_alcotest.to_alcotest prop_project_shrinks;
      QCheck_alcotest.to_alcotest prop_join_self_key;
      QCheck_alcotest.to_alcotest prop_select_monotone;
    ] )
