(* Tests for the rewriting rules (Section 6.1). Every rule is checked
   two ways: it fires on its motivating pattern, and the rewritten
   plan evaluates to the same relation as the original (semantics
   preservation on a real site instance). *)

open Webviews

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let schema = Sitegen.University.schema

let uni = lazy (Sitegen.University.build ())

let instance =
  lazy
    (let u = Lazy.force uni in
     let http = Websim.Http.connect (Sitegen.University.site u) in
     Websim.Crawler.crawl schema http)

let eval e = Eval.eval schema (Eval.instance_source (Lazy.force instance)) e

let same_answer ~on_attrs e1 e2 =
  let r1 = Adm.Relation.project on_attrs (eval e1) in
  let r2 = Adm.Relation.project on_attrs (eval e2) in
  Adm.Relation.equal r1 r2

(* Compare results ignoring attribute names (rewrites that merge
   occurrences legitimately rename output columns). *)
let same_values e1 e2 =
  let matrix e =
    Adm.Relation.rows (eval e)
    |> List.map (fun t -> List.map (fun (_, v) -> Adm.Value.to_string v) t)
    |> List.sort compare
  in
  matrix e1 = matrix e2

(* Building blocks. *)
let profs_nav ?(alias = "ProfPage") ?(list_alias = "ProfListPage") () =
  Nalg.follow
    (Nalg.unnest (Nalg.entry ~alias:list_alias "ProfListPage") (list_alias ^ ".ProfList"))
    (list_alias ^ ".ProfList.ToProf")
    ~scheme:"ProfPage" ~alias

let dept_nav ?(alias = "DeptPage") () =
  Nalg.follow
    (Nalg.unnest (Nalg.entry "DeptListPage") "DeptListPage.DeptList")
    "DeptListPage.DeptList.ToDept" ~scheme:"DeptPage" ~alias

let sessions_nav ?(alias = "SessionPage") ?(list_alias = "SessionListPage") () =
  Nalg.follow
    (Nalg.unnest (Nalg.entry ~alias:list_alias "SessionListPage") (list_alias ^ ".SesList"))
    (list_alias ^ ".SesList.ToSes")
    ~scheme:"SessionPage" ~alias

let courses_nav ?(ses_alias = "SessionPage") ?(alias = "CoursePage") () =
  Nalg.follow
    (Nalg.unnest (sessions_nav ~alias:ses_alias ()) (ses_alias ^ ".CourseList"))
    (ses_alias ^ ".CourseList.ToCourse")
    ~scheme:"CoursePage" ~alias

(* ------------------------------------------------------------------ *)
(* Rule 2                                                              *)
(* ------------------------------------------------------------------ *)

let test_rule2_fires () =
  (* joining professor pages with the DeptListPage entry point on the
     DName link constraint is a follow... the university scheme has no
     entry-point link constraint, so exercise the negative case: *)
  let e =
    Nalg.join
      [ ("ProfPage.DName", "DeptListPage.Wrong") ]
      (profs_nav ()) (Nalg.entry "DeptListPage")
  in
  check int_t "no spurious rule 2" 0 (List.length (Rewrite.rule2 schema e))

(* ------------------------------------------------------------------ *)
(* Rule 4                                                              *)
(* ------------------------------------------------------------------ *)

let test_rule4_merges_repeated_navigation () =
  (* (ProfListPage ◦ PL → ProfPage ◦ CourseList) ⋈_{PName} (ProfListPage ◦ PL → ProfPage) *)
  let long = Nalg.unnest (profs_nav ()) "ProfPage.CourseList" in
  let short = profs_nav ~alias:"ProfPage@2" ~list_alias:"ProfListPage@2" () in
  let e =
    Nalg.join [ ("ProfPage.PName", "ProfPage@2.PName") ] long short
  in
  let rewrites = Rewrite.rule4 schema e in
  check bool_t "rule 4 fires" true (rewrites <> []);
  let merged = List.hd rewrites in
  check bool_t "join eliminated" true
    (Nalg.fold
       (fun acc n -> acc && match n with Nalg.Join _ -> false | _ -> true)
       true merged);
  check bool_t "same answer" true
    (same_answer ~on_attrs:[ "ProfPage.PName"; "ProfPage.CourseList.CName" ] e merged)

let test_rule4_respects_keys () =
  (* joining on an attribute that does not collapse must not merge *)
  let long = Nalg.unnest (profs_nav ()) "ProfPage.CourseList" in
  let short = profs_nav ~alias:"ProfPage@2" ~list_alias:"ProfListPage@2" () in
  let e = Nalg.join [ ("ProfPage.PName", "ProfPage@2.Email") ] long short in
  check int_t "no merge on mismatched keys" 0 (List.length (Rewrite.rule4 schema e))

let test_rule4_identical_relations () =
  (* R ⋈ R = R; the merged plan keeps one occurrence, so compare the
     projected values (column names follow the surviving occurrence) *)
  let r1 = profs_nav () in
  let r2 = profs_nav ~alias:"ProfPage@2" ~list_alias:"ProfListPage@2" () in
  let e = Nalg.join [ ("ProfPage.PName", "ProfPage@2.PName") ] r1 r2 in
  let rewrites = Rewrite.rule4 schema e in
  check bool_t "fires" true (rewrites <> []);
  let merged = List.hd rewrites in
  let names e =
    Adm.Relation.column
      (List.find
         (fun a -> Filename.check_suffix a ".PName")
         (Adm.Relation.attrs (eval e)))
      (eval e)
    |> List.map Adm.Value.to_string |> List.sort_uniq compare
  in
  check bool_t "same professor set" true (names e = names merged)

(* ------------------------------------------------------------------ *)
(* Rule 6                                                              *)
(* ------------------------------------------------------------------ *)

let test_rule6_moves_selection_across_link () =
  (* σ[CoursePage.Session='Fall'](… → CoursePage) can test
     SessionPage.Session instead (link constraint) *)
  let e =
    Nalg.select
      [ Pred.eq_const "CoursePage.Session" (Adm.Value.text "Fall") ]
      (courses_nav ())
  in
  let rewrites = Rewrite.rule6 schema e in
  check bool_t "rule 6 fires" true (rewrites <> []);
  let moved =
    List.exists
      (fun e' ->
        List.mem "SessionPage.Session"
          (Nalg.fold
             (fun acc n ->
               match n with Nalg.Select (p, _) -> Pred.attrs p @ acc | _ -> acc)
             [] e'))
      rewrites
  in
  check bool_t "selection now on SessionPage.Session" true moved;
  List.iter
    (fun e' ->
      check bool_t "same answer" true
        (same_answer ~on_attrs:[ "CoursePage.CName" ] e e'))
    rewrites

let test_rule6_then_sink_reduces_cost () =
  let e =
    Nalg.select
      [ Pred.eq_const "CoursePage.Session" (Adm.Value.text "Fall") ]
      (courses_nav ())
  in
  let stats = Stats.of_instance (Lazy.force instance) in
  let baseline = Cost.cost schema stats e in
  let improved =
    Rewrite.rule6 schema e
    |> List.map (Rewrite.sink_selections schema)
    |> List.map (Cost.cost schema stats)
    |> List.fold_left Float.min baseline
  in
  check bool_t "pushing the selection is cheaper" true (improved < baseline)

(* ------------------------------------------------------------------ *)
(* Selection sinking                                                   *)
(* ------------------------------------------------------------------ *)

let test_sink_selections () =
  let e =
    Nalg.select
      [ Pred.eq_const "ProfListPage.ProfList.PName" (Adm.Value.text "nobody") ]
      (profs_nav ())
  in
  let sunk = Rewrite.sink_selections schema e in
  (* the selection must now sit below the Follow *)
  (match sunk with
  | Nalg.Follow { src = Nalg.Select _; _ } -> ()
  | _ -> Alcotest.failf "selection not sunk: %s" (Nalg.to_string sunk));
  check bool_t "same (empty) answer" true
    (same_answer ~on_attrs:[ "ProfPage.PName" ] e sunk)

let test_sink_respects_scope () =
  let e =
    Nalg.select [ Pred.eq_const "ProfPage.Rank" (Adm.Value.text "Full") ] (profs_nav ())
  in
  let sunk = Rewrite.sink_selections schema e in
  (* Rank only exists after the follow: selection must stay on top *)
  (match sunk with
  | Nalg.Select _ -> ()
  | _ -> Alcotest.failf "selection moved illegally: %s" (Nalg.to_string sunk));
  check bool_t "same answer" true (same_answer ~on_attrs:[ "ProfPage.PName" ] e sunk)

(* ------------------------------------------------------------------ *)
(* Rule 8: pointer join                                                *)
(* ------------------------------------------------------------------ *)

let example_71_join () =
  (* (sessions → CoursePage) ⋈_{CName} (profs ◦ CourseList) *)
  let course_side = courses_nav () in
  let prof_side =
    Nalg.unnest (profs_nav ~alias:"P2" ~list_alias:"PL2" ()) "P2.CourseList"
  in
  Nalg.join [ ("CoursePage.CName", "P2.CourseList.CName") ] course_side prof_side

let test_rule8_fires () =
  let e = example_71_join () in
  let rewrites = Rewrite.rule8 schema e in
  check bool_t "rule 8 fires" true (rewrites <> []);
  (* the rewritten plan joins the two link sets below a follow *)
  let has_join_under_follow =
    List.exists
      (fun e' ->
        Nalg.fold
          (fun acc n ->
            acc
            || match n with Nalg.Follow { src = Nalg.Join _; _ } -> true | _ -> false)
          false e')
      rewrites
  in
  check bool_t "join pushed below follow" true has_join_under_follow;
  List.iter
    (fun e' ->
      check bool_t "same answer" true
        (same_answer ~on_attrs:[ "CoursePage.CName"; "P2.PName" ] e e'))
    rewrites

(* ------------------------------------------------------------------ *)
(* Rule 9: pointer chase                                               *)
(* ------------------------------------------------------------------ *)

let test_rule9_fires_with_inclusion () =
  let e = example_71_join () in
  let rewrites = Rewrite.rule9 schema e in
  check bool_t "rule 9 fires" true (rewrites <> []);
  (* chase: sessions disappear, courses reached from professors *)
  let chased =
    List.filter (fun e' -> not (List.mem "SessionPage" (Nalg.aliases e'))) rewrites
  in
  check bool_t "session path dropped in some rewriting" true (chased <> []);
  List.iter
    (fun e' ->
      check bool_t "same answer" true
        (same_answer ~on_attrs:[ "CoursePage.CName"; "P2.PName" ] e e'))
    rewrites

let test_rule9_blocked_by_references () =
  (* if the query needs SessionPage.Session, the session path cannot
     be abandoned *)
  let e =
    Nalg.project [ "SessionPage.Session"; "CoursePage.CName" ] (example_71_join ())
  in
  let rewrites = Rewrite.rule9 schema e in
  check bool_t "no rewriting keeps the needed attribute" true
    (List.for_all (fun e' -> List.mem "SessionPage" (Nalg.aliases e')) rewrites)

let test_rule9_requires_inclusion () =
  (* joining DeptPage's prof pointers with course instructor pointers:
     CoursePage.ToProf ⊆ ProfListPage…, but NOT ⊆ DeptPage.ProfList…,
     so chasing from CoursePage.ToProf is allowed only against the
     prof-list path *)
  let prof_follow =
    Nalg.follow
      (Nalg.unnest (dept_nav ()) "DeptPage.ProfList")
      "DeptPage.ProfList.ToProf" ~scheme:"ProfPage"
  in
  let course_side = courses_nav () in
  let e =
    Nalg.join [ ("ProfPage.PName", "CoursePage.PName") ] prof_follow course_side
  in
  (* chase would follow CoursePage.ToProf; inclusion CoursePage.ToProf
     ⊆ DeptPage.ProfList.ToProf does NOT hold, so rule 9 must not
     produce a plan that drops the DeptPage path *)
  let rewrites = Rewrite.rule9 schema e in
  check bool_t "dept path never dropped" true
    (List.for_all (fun e' -> List.mem "DeptPage" (Nalg.aliases e')) rewrites)

let test_rule9_requires_pure_navigation () =
  (* the chased-away prefix must enumerate the link path's full
     extent. Here the prof-list navigation is restricted by a join to
     the course spine ("professors that teach"): the declared inclusion
     DeptPage.ProfList.ToProf ⊆ ProfListPage.ProfList.ToProf speaks
     about the unrestricted path, so chasing from the dept side and
     dropping the restricted prefix would widen the answer to
     professors that teach nothing *)
  let restricted_profs =
    Nalg.follow
      (Nalg.join
         [ ("ProfListPage.ProfList.ToProf", "CoursePage.ToProf") ]
         (Nalg.unnest (Nalg.entry ~alias:"ProfListPage" "ProfListPage") "ProfListPage.ProfList")
         (courses_nav ()))
      "ProfListPage.ProfList.ToProf" ~scheme:"ProfPage" ~alias:"ProfPage"
  in
  let dept_profs = Nalg.unnest (dept_nav ()) "DeptPage.ProfList" in
  let e =
    Nalg.project [ "ProfPage.PName" ]
      (Nalg.join [ ("ProfPage.PName", "DeptPage.ProfList.PName") ] restricted_profs dept_profs)
  in
  let rewrites = Rewrite.rule9 schema e in
  check bool_t "restricted prefix never dropped" true
    (List.for_all (fun e' -> List.mem "CoursePage" (Nalg.aliases e')) rewrites);
  List.iter
    (fun e' -> check bool_t "same answer" true (same_answer ~on_attrs:[ "ProfPage.PName" ] e e'))
    rewrites

(* ------------------------------------------------------------------ *)
(* Pruning (rules 3 and 5)                                             *)
(* ------------------------------------------------------------------ *)

let test_prune_drops_unneeded_follow () =
  (* π[names from the list page] over profs_nav: no ProfPage attribute
     needed, so the follow disappears (rule 5) *)
  let e = Nalg.project [ "ProfListPage.ProfList.PName" ] (profs_nav ()) in
  let pruned = Rewrite.prune schema e in
  check bool_t "follow dropped" false (List.mem "ProfPage" (Nalg.aliases pruned));
  check bool_t "same answer" true
    (same_answer ~on_attrs:[ "ProfListPage.ProfList.PName" ] e pruned)

let test_prune_drops_unneeded_unnest () =
  (* π[DName] over DeptPage ◦ ProfList: unnest contributes nothing and
     the schema declares ProfList non-empty, licensing rule 3 *)
  let e = Nalg.project [ "DeptPage.DName" ] (Nalg.unnest (dept_nav ()) "DeptPage.ProfList") in
  let pruned = Rewrite.prune schema e in
  let has_unnest =
    Nalg.fold
      (fun acc n -> acc || match n with Nalg.Unnest (_, a) -> String.equal a "DeptPage.ProfList" | _ -> false)
      false pruned
  in
  check bool_t "unnest dropped" false has_unnest;
  check bool_t "same answer" true (same_answer ~on_attrs:[ "DeptPage.DName" ] e pruned)

let test_prune_keeps_needed () =
  let e = Nalg.project [ "ProfPage.Rank" ] (profs_nav ()) in
  let pruned = Rewrite.prune schema e in
  check bool_t "follow kept" true (List.mem "ProfPage" (Nalg.aliases pruned));
  check bool_t "same answer" true (same_answer ~on_attrs:[ "ProfPage.Rank" ] e pruned)

let test_prune_keeps_possibly_empty_unnest () =
  (* ProfPage.CourseList carries no non-emptiness declaration: a
     professor may teach no course, so the unnest restricts (it is the
     "professors that teach" filter) and rule 3 must not drop it even
     though nothing above reads its attributes *)
  let e =
    Nalg.project [ "ProfPage.PName" ] (Nalg.unnest (profs_nav ()) "ProfPage.CourseList")
  in
  let pruned = Rewrite.prune schema e in
  let has_unnest =
    Nalg.fold
      (fun acc n ->
        acc || match n with Nalg.Unnest (_, a) -> String.equal a "ProfPage.CourseList" | _ -> false)
      false pruned
  in
  check bool_t "possibly-empty unnest kept" true has_unnest;
  check bool_t "same answer" true (same_answer ~on_attrs:[ "ProfPage.PName" ] e pruned)

(* ------------------------------------------------------------------ *)
(* Rule 7 (literal form)                                               *)
(* ------------------------------------------------------------------ *)

let test_rule7_replace_eliminates_navigation () =
  (* the intro's redundancy example, on the university site: asking
     only for professor names of a department needs no professor
     pages — the names are replicated in the department's ProfList *)
  let e =
    Nalg.project [ "ProfPage.PName" ]
      (Nalg.follow
         (Nalg.unnest (dept_nav ()) "DeptPage.ProfList")
         "DeptPage.ProfList.ToProf" ~scheme:"ProfPage")
  in
  let variants =
    Rewrite.rule7_replace schema e |> List.map (Rewrite.prune schema)
  in
  let eliminated =
    List.filter (fun e' -> not (List.mem "ProfPage" (Nalg.aliases e'))) variants
  in
  check bool_t "a variant drops the professor pages" true (eliminated <> []);
  List.iter
    (fun e' -> check bool_t "same values" true (same_values e e'))
    eliminated

let test_rule7_literal () =
  (* π[DeptPage.DName](DeptListPage ◦ DeptList → DeptPage) =
     π[DeptListPage.DeptList.DName](DeptListPage ◦ DeptList) *)
  let e = Nalg.project [ "DeptPage.DName" ] (dept_nav ()) in
  let rewrites = Rewrite.rule7_literal schema e in
  check bool_t "rule 7 fires" true (rewrites <> []);
  let r1 = eval e in
  List.iter
    (fun e' ->
      let r2 = eval e' in
      check bool_t "same values modulo attribute name" true
        (List.sort compare (List.map Adm.Value.to_string (List.concat_map (List.map snd) (Adm.Relation.rows r1)))
        = List.sort compare (List.map Adm.Value.to_string (List.concat_map (List.map snd) (Adm.Relation.rows r2)))))
    rewrites

(* ------------------------------------------------------------------ *)
(* Join reordering                                                     *)
(* ------------------------------------------------------------------ *)

let test_join_commute_preserves () =
  let e = example_71_join () in
  match Rewrite.join_commute schema e with
  | e' :: _ ->
    check bool_t "commuted same answer" true
      (same_answer ~on_attrs:[ "CoursePage.CName" ] e e')
  | [] -> Alcotest.fail "commute must fire on a join"

let test_join_rotate_preserves () =
  (* ((profs ⋈ courses) ⋈ depts) — rotate right *)
  let profs = profs_nav () in
  let courses = courses_nav () in
  let depts = dept_nav () in
  let e =
    Nalg.join
      [ ("ProfPage.DName", "DeptPage.DName") ]
      (Nalg.join [ ("ProfPage.PName", "CoursePage.PName") ] profs courses)
      depts
  in
  let rotated = Rewrite.join_rotate schema e in
  (* k2's left attr comes from profs (the a side), not b: rotation is
     NOT legal here, so rotate must not fire *)
  check int_t "illegal rotation blocked" 0 (List.length rotated);
  let e2 =
    Nalg.join
      [ ("CoursePage.Session", "SessionPage@9.Session") ]
      (Nalg.join [ ("ProfPage.PName", "CoursePage.PName") ] profs courses)
      (sessions_nav ~alias:"SessionPage@9" ~list_alias:"SessionListPage@9" ())
  in
  match Rewrite.join_rotate schema e2 with
  | e2' :: _ ->
    check bool_t "rotation same answer" true
      (same_answer ~on_attrs:[ "ProfPage.PName"; "CoursePage.CName" ] e2 e2')
  | [] -> Alcotest.fail "legal rotation must fire"

let suite =
  ( "rewrite",
    [
      Alcotest.test_case "rule 2 negative" `Quick test_rule2_fires;
      Alcotest.test_case "rule 4 merges" `Quick test_rule4_merges_repeated_navigation;
      Alcotest.test_case "rule 4 respects keys" `Quick test_rule4_respects_keys;
      Alcotest.test_case "rule 4 identical relations" `Quick test_rule4_identical_relations;
      Alcotest.test_case "rule 6 moves selection" `Quick test_rule6_moves_selection_across_link;
      Alcotest.test_case "rule 6 reduces cost" `Quick test_rule6_then_sink_reduces_cost;
      Alcotest.test_case "sink selections" `Quick test_sink_selections;
      Alcotest.test_case "sink respects scope" `Quick test_sink_respects_scope;
      Alcotest.test_case "rule 8 pointer join" `Quick test_rule8_fires;
      Alcotest.test_case "rule 9 pointer chase" `Quick test_rule9_fires_with_inclusion;
      Alcotest.test_case "rule 9 blocked by references" `Quick test_rule9_blocked_by_references;
      Alcotest.test_case "rule 9 requires inclusion" `Quick test_rule9_requires_inclusion;
      Alcotest.test_case "rule 9 requires pure navigation" `Quick
        test_rule9_requires_pure_navigation;
      Alcotest.test_case "prune drops follow (rule 5)" `Quick test_prune_drops_unneeded_follow;
      Alcotest.test_case "prune drops unnest (rule 3)" `Quick test_prune_drops_unneeded_unnest;
      Alcotest.test_case "prune keeps needed" `Quick test_prune_keeps_needed;
      Alcotest.test_case "prune keeps possibly-empty unnest" `Quick
        test_prune_keeps_possibly_empty_unnest;
      Alcotest.test_case "rule 7 eliminates navigation" `Quick
        test_rule7_replace_eliminates_navigation;
      Alcotest.test_case "rule 7 literal" `Quick test_rule7_literal;
      Alcotest.test_case "join commute" `Quick test_join_commute_preserves;
      Alcotest.test_case "join rotate" `Quick test_join_rotate_preserves;
    ] )
