(* Rule 2 in the positive: a join whose predicate is a link constraint
   towards an entry point is a follow. The university scheme has no
   such constraint, so this suite builds a two-scheme mini site: item
   pages all link back to the (single) home page, repeating its
   SiteName. *)

open Webviews

let mini_schema =
  let open Adm in
  let home =
    Page_scheme.make ~entry_url:"/home" "MiniHome"
      [
        Page_scheme.attr "SiteName" Webtype.Text;
        Page_scheme.attr "Items"
          (Webtype.List [ ("IName", Webtype.Text); ("ToItem", Webtype.Link "MiniItem") ]);
      ]
  in
  let item =
    Page_scheme.make "MiniItem"
      [
        Page_scheme.attr "IName" Webtype.Text;
        Page_scheme.attr "SiteName" Webtype.Text;
        Page_scheme.attr "ToHome" (Webtype.Link "MiniHome");
      ]
  in
  let p = Constraints.path in
  Schema.make ~name:"mini"
    ~schemes:[ home; item ]
    ~link_constraints:
      [
        Constraints.link_constraint
          ~link:(p "MiniHome" [ "Items"; "ToItem" ])
          ~source_attr:(p "MiniHome" [ "Items"; "IName" ])
          ~target_scheme:"MiniItem" ~target_attr:"IName";
        (* the rule-2 enabler: item pages repeat the home page's name *)
        Constraints.link_constraint
          ~link:(p "MiniItem" [ "ToHome" ])
          ~source_attr:(p "MiniItem" [ "SiteName" ])
          ~target_scheme:"MiniHome" ~target_attr:"SiteName";
      ]
    ~inclusions:[]

let build_mini_site () =
  let site = Websim.Site.create () in
  let item_url i = Fmt.str "/item%d" i in
  let items = [ 1; 2; 3 ] in
  Websim.Site.put site ~url:"/home"
    ~body:
      (Websim.Wrapper.render ~title:"home"
         [
           ("SiteName", Adm.Value.text "mini");
           ( "Items",
             Adm.Value.Rows
               (List.map
                  (fun i ->
                    [
                      ("IName", Adm.Value.text (Fmt.str "item%d" i));
                      ("ToItem", Adm.Value.link (item_url i));
                    ])
                  items) );
         ]);
  List.iter
    (fun i ->
      Websim.Site.put site ~url:(item_url i)
        ~body:
          (Websim.Wrapper.render ~title:"item"
             [
               ("IName", Adm.Value.text (Fmt.str "item%d" i));
               ("SiteName", Adm.Value.text "mini");
               ("ToHome", Adm.Value.link "/home");
             ]))
    items;
  site

let items_nav =
  Dsl.(
    start "MiniHome" |> dive "Items" |> follow "ToItem" ~scheme:"MiniItem")

let test_rule2_fires_positive () =
  (* join of items with the MiniHome entry on SiteName *)
  let e =
    Nalg.join
      [ ("MiniItem.SiteName", "Home2.SiteName") ]
      (Dsl.finish items_nav)
      (Nalg.entry ~alias:"Home2" "MiniHome")
  in
  match Rewrite.rule2 mini_schema e with
  | [] -> Alcotest.fail "rule 2 must fire"
  | rewritten :: _ ->
    (* the join became a follow along ToHome *)
    let has_follow_home =
      Nalg.fold
        (fun acc n ->
          acc
          ||
          match n with
          | Nalg.Follow { link = "MiniItem.ToHome"; alias = "Home2"; _ } -> true
          | _ -> false)
        false rewritten
    in
    Alcotest.(check bool) "follows ToHome" true has_follow_home;
    (* and evaluates to the same relation *)
    let site = build_mini_site () in
    let eval expr =
      let http = Websim.Http.connect site in
      Eval.eval mini_schema (Eval.live_source mini_schema http) expr
    in
    Alcotest.(check bool) "same answer" true
      (Adm.Relation.equal
         (Adm.Relation.sort_rows (eval e))
         (Adm.Relation.sort_rows (eval rewritten)))

let test_rule2_needs_matching_constraint () =
  (* joining on IName (no constraint towards the entry) must not fire *)
  let e =
    Nalg.join
      [ ("MiniItem.IName", "Home2.SiteName") ]
      (Dsl.finish items_nav)
      (Nalg.entry ~alias:"Home2" "MiniHome")
  in
  Alcotest.(check int) "no rewriting" 0 (List.length (Rewrite.rule2 mini_schema e))

let test_mini_site_crawls () =
  let site = build_mini_site () in
  let http = Websim.Http.connect site in
  let instance = Websim.Crawler.crawl mini_schema http in
  Alcotest.(check int) "4 pages" 4 instance.Websim.Crawler.fetched;
  Alcotest.(check (list string)) "constraints hold" []
    (Websim.Crawler.validate mini_schema instance)

let suite =
  ( "rule2",
    [
      Alcotest.test_case "mini site crawls" `Quick test_mini_site_crawls;
      Alcotest.test_case "rule 2 fires (positive)" `Quick test_rule2_fires_positive;
      Alcotest.test_case "rule 2 needs constraint" `Quick test_rule2_needs_matching_constraint;
    ] )
