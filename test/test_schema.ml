(* Tests for web types, page-schemes, constraints and schemas. *)

open Adm

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

let uni = Sitegen.University.schema

let test_webtype_accepts () =
  check bool_t "text ok" true (Webtype.accepts Webtype.Text (Value.text "x"));
  check bool_t "null ok everywhere" true (Webtype.accepts Webtype.Int Value.Null);
  check bool_t "int rejects text" false (Webtype.accepts Webtype.Int (Value.text "x"));
  check bool_t "link ok" true (Webtype.accepts (Webtype.Link "P") (Value.link "/x"));
  let listy = Webtype.List [ ("A", Webtype.Text) ] in
  check bool_t "list ok" true
    (Webtype.accepts listy (Value.Rows [ [ ("A", Value.text "v") ] ]));
  check bool_t "list rejects extra attr" false
    (Webtype.accepts listy (Value.Rows [ [ ("A", Value.text "v"); ("B", Value.Int 1) ] ]))

let test_webtype_resolve () =
  let fields =
    [ ("X", Webtype.Text); ("L", Webtype.List [ ("Y", Webtype.Link "P") ]) ]
  in
  check bool_t "top resolve" true (Webtype.resolve_in_fields fields [ "X" ] = Some Webtype.Text);
  check bool_t "nested resolve" true
    (Webtype.resolve_in_fields fields [ "L"; "Y" ] = Some (Webtype.Link "P"));
  check bool_t "missing" true (Webtype.resolve_in_fields fields [ "Z" ] = None);
  check bool_t "through atom fails" true (Webtype.resolve_in_fields fields [ "X"; "Y" ] = None)

let test_page_scheme_basics () =
  let ps = Schema.find_scheme_exn uni "ProfPage" in
  check string_t "name" "ProfPage" (Page_scheme.name ps);
  check bool_t "not entry" false (Page_scheme.is_entry_point ps);
  check bool_t "resolve Rank" true (Page_scheme.resolve_path ps [ "Rank" ] = Some Webtype.Text);
  check bool_t "resolve nested link" true
    (Page_scheme.resolve_path ps [ "CourseList"; "ToCourse" ] = Some (Webtype.Link "CoursePage"));
  let links = Page_scheme.link_paths ps in
  check int_t "two link paths" 2 (List.length links);
  check bool_t "link targets" true
    (List.mem ([ "ToDept" ], "DeptPage") links
    && List.mem ([ "CourseList"; "ToCourse" ], "CoursePage") links)

let test_page_scheme_url_reserved () =
  Alcotest.check_raises "URL reserved"
    (Invalid_argument "Page_scheme.make: URL is implicit and reserved")
    (fun () -> ignore (Page_scheme.make "P" [ Page_scheme.attr "URL" Webtype.Text ]))

let test_validate_tuple () =
  let ps = Schema.find_scheme_exn uni "DeptPage" in
  let good =
    [
      ("URL", Value.link "/d.html");
      ("DName", Value.text "CS");
      ("Address", Value.text "1 Road");
      ("ProfList", Value.Rows []);
    ]
  in
  check int_t "valid tuple" 0 (List.length (Page_scheme.validate_tuple ps good));
  let missing = Value.remove good "Address" in
  check bool_t "missing attr caught" true (Page_scheme.validate_tuple ps missing <> []);
  let bad_type = Value.set good "DName" (Value.Rows []) in
  check bool_t "bad type caught" true (Page_scheme.validate_tuple ps bad_type <> []);
  let unknown = Value.set good "Zed" (Value.text "x") in
  check bool_t "unknown attr caught" true (Page_scheme.validate_tuple ps unknown <> [])

let test_paths () =
  let p = Constraints.path_of_string "ProfPage.CourseList.ToCourse" in
  check string_t "scheme" "ProfPage" p.Constraints.scheme;
  check Alcotest.(list string_t) "steps" [ "CourseList"; "ToCourse" ] p.Constraints.steps;
  check string_t "roundtrip" "ProfPage.CourseList.ToCourse" (Constraints.path_to_string p);
  Alcotest.check_raises "no steps"
    (Invalid_argument "Constraints.path_of_string: \"ProfPage\"") (fun () ->
      ignore (Constraints.path_of_string "ProfPage"))

let test_schema_validates () =
  check Alcotest.(list string_t) "university scheme well-formed" []
    (Schema.validate uni);
  check Alcotest.(list string_t) "bibliography scheme well-formed" []
    (Schema.validate Sitegen.Bibliography.schema)

let test_entry_points () =
  let names = List.map Page_scheme.name (Schema.entry_points uni) in
  check int_t "four entry points" 4 (List.length names);
  check bool_t "home is entry" true (List.mem "HomePage" names)

let test_inclusion_closure () =
  let p = Constraints.path in
  check bool_t "declared inclusion" true
    (Schema.inclusion_holds uni
       ~sub:(p "DeptPage" [ "ProfList"; "ToProf" ])
       ~sup:(p "ProfListPage" [ "ProfList"; "ToProf" ]));
  check bool_t "reflexive" true
    (Schema.inclusion_holds uni
       ~sub:(p "CoursePage" [ "ToProf" ])
       ~sup:(p "CoursePage" [ "ToProf" ]));
  check bool_t "not derivable" false
    (Schema.inclusion_holds uni
       ~sub:(p "ProfListPage" [ "ProfList"; "ToProf" ])
       ~sup:(p "DeptPage" [ "ProfList"; "ToProf" ]))

let test_inclusion_transitive () =
  (* build a small schema with A ⊆ B, B ⊆ C *)
  let p = Constraints.path in
  let ps name entry =
    Page_scheme.make ?entry_url:entry name
      [ Page_scheme.attr "L" (Webtype.Link "T") ]
  in
  let target = Page_scheme.make "T" [ Page_scheme.attr "X" Webtype.Text ] in
  let s =
    Schema.make ~name:"chain"
      ~schemes:[ ps "A" (Some "/a"); ps "B" (Some "/b"); ps "C" (Some "/c"); target ]
      ~link_constraints:[]
      ~inclusions:
        [
          Constraints.inclusion ~sub:(p "A" [ "L" ]) ~sup:(p "B" [ "L" ]);
          Constraints.inclusion ~sub:(p "B" [ "L" ]) ~sup:(p "C" [ "L" ]);
        ]
  in
  check bool_t "transitive" true
    (Schema.inclusion_holds s ~sub:(p "A" [ "L" ]) ~sup:(p "C" [ "L" ]));
  check bool_t "not symmetric" false
    (Schema.inclusion_holds s ~sub:(p "C" [ "L" ]) ~sup:(p "A" [ "L" ]))

let test_schema_validate_catches () =
  let bad =
    Schema.make ~name:"bad"
      ~schemes:[ Page_scheme.make "P" [ Page_scheme.attr "A" Webtype.Text ] ]
      ~link_constraints:
        [
          Constraints.link_constraint
            ~link:(Constraints.path "P" [ "A" ])
            ~source_attr:(Constraints.path "P" [ "A" ])
            ~target_scheme:"Q" ~target_attr:"B";
        ]
      ~inclusions:[]
  in
  check bool_t "bad constraint caught" true (Schema.validate bad <> [])

let test_constraints_on_link () =
  let link = Constraints.path "SessionPage" [ "CourseList"; "ToCourse" ] in
  let cs = Schema.constraints_on_link uni link in
  check int_t "two constraints on the link" 2 (List.length cs);
  check bool_t "targets CoursePage" true
    (List.for_all
       (fun (c : Constraints.link_constraint) -> String.equal c.target_scheme "CoursePage")
       cs)

let test_link_target () =
  check (Alcotest.option string_t) "link target" (Some "CoursePage")
    (Schema.link_target uni (Constraints.path "ProfPage" [ "CourseList"; "ToCourse" ]));
  check (Alcotest.option string_t) "non-link" None
    (Schema.link_target uni (Constraints.path "ProfPage" [ "Rank" ]))

let test_instance_validation_negative () =
  (* a dangling link and a violated link constraint are both caught *)
  let p = Constraints.path in
  let src =
    Page_scheme.make ~entry_url:"/s" "S"
      [ Page_scheme.attr "A" Webtype.Text; Page_scheme.attr "L" (Webtype.Link "T") ]
  in
  let tgt = Page_scheme.make "T" [ Page_scheme.attr "B" Webtype.Text ] in
  let s =
    Schema.make ~name:"mini" ~schemes:[ src; tgt ]
      ~link_constraints:
        [
          Constraints.link_constraint ~link:(p "S" [ "L" ]) ~source_attr:(p "S" [ "A" ])
            ~target_scheme:"T" ~target_attr:"B";
        ]
      ~inclusions:[]
  in
  let s_rel =
    Relation.make [ "URL"; "A"; "L" ]
      [ [ ("URL", Value.link "/s"); ("A", Value.text "x"); ("L", Value.link "/t") ] ]
  in
  let t_rel_bad =
    Relation.make [ "URL"; "B" ]
      [ [ ("URL", Value.link "/t"); ("B", Value.text "y") ] ]
  in
  let lookup tbl name = List.assoc_opt name tbl in
  check bool_t "violation caught" true
    (Schema.validate_instance s (lookup [ ("S", s_rel); ("T", t_rel_bad) ]) <> []);
  let t_rel_good =
    Relation.make [ "URL"; "B" ]
      [ [ ("URL", Value.link "/t"); ("B", Value.text "x") ] ]
  in
  check Alcotest.(list string_t) "good instance passes" []
    (Schema.validate_instance s (lookup [ ("S", s_rel); ("T", t_rel_good) ]))

let suite =
  ( "schema",
    [
      Alcotest.test_case "webtype accepts" `Quick test_webtype_accepts;
      Alcotest.test_case "webtype resolve" `Quick test_webtype_resolve;
      Alcotest.test_case "page-scheme basics" `Quick test_page_scheme_basics;
      Alcotest.test_case "URL reserved" `Quick test_page_scheme_url_reserved;
      Alcotest.test_case "validate tuple" `Quick test_validate_tuple;
      Alcotest.test_case "constraint paths" `Quick test_paths;
      Alcotest.test_case "schemas well-formed" `Quick test_schema_validates;
      Alcotest.test_case "entry points" `Quick test_entry_points;
      Alcotest.test_case "inclusion closure" `Quick test_inclusion_closure;
      Alcotest.test_case "inclusion transitive" `Quick test_inclusion_transitive;
      Alcotest.test_case "schema validate catches" `Quick test_schema_validate_catches;
      Alcotest.test_case "constraints on link" `Quick test_constraints_on_link;
      Alcotest.test_case "link target" `Quick test_link_target;
      Alcotest.test_case "instance validation" `Quick test_instance_validation_negative;
    ] )
