(* Tests for the concurrent query server: deterministic interleaving,
   the shared-cache coalescing ledger and its invariant, exactness of
   concurrent results against isolated evaluation (the QCheck property
   of the issue: per-query rows identical, shared distinct-GET set =
   union of the isolated per-query GET sets), deadline degradation,
   stale-serve under an open breaker, and admission control. *)

open Webviews

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let sites =
  [
    ( "university", Sitegen.University.schema,
      (fun () -> Sitegen.University.site (Sitegen.University.build ())),
      (fun _ -> Sitegen.University.view),
      Server.Workload.university_templates );
    ( "bibliography", Sitegen.Bibliography.schema,
      (fun () -> Sitegen.Bibliography.site (Sitegen.Bibliography.build ())),
      (fun schema -> View.auto_registry schema),
      Server.Workload.bibliography_templates );
    ( "catalog", Sitegen.Catalog.schema,
      (fun () -> Sitegen.Catalog.site (Sitegen.Catalog.build ())),
      (fun _ -> Sitegen.Catalog.view),
      Server.Workload.catalog_templates );
  ]

let stats_of schema site =
  Stats.of_instance (Websim.Crawler.crawl schema (Websim.Http.connect site))

(* A server-sized LRU: big enough that the workload's page set never
   evicts, so the single-flight table is the whole wire set. *)
let server_config = Websim.Fetcher.config ~cache_capacity:8192 ()

let shared_cache ?netmodel site =
  Server.Shared_cache.create ~config:server_config ?netmodel
    (Websim.Http.connect site)

let specs_of schema site registry entries =
  Server.Sched.plan_workload schema (stats_of schema site) registry entries

let run_workload ?netmodel ?stale ?(config = Server.Sched.default_config)
    schema site registry entries =
  let cache = shared_cache ?netmodel site in
  (cache, Server.Sched.run ?stale config cache schema
            (specs_of schema site registry entries))

(* Isolated baseline: each query on its own fresh single-query cache
   over the same site (and the same netmodel seed when given). *)
let isolated ?seed schema site registry (e : Server.Workload.entry) =
  let netmodel =
    Option.map
      (fun seed -> Websim.Netmodel.create (Websim.Netmodel.config ~seed ()))
      seed
  in
  let cache = shared_cache ?netmodel site in
  let spec = List.hd (specs_of schema site registry [ e ]) in
  let source = Server.Shared_cache.source cache ~query:0 schema in
  let rows = Eval.eval schema source spec.Server.Sched.expr in
  (rows, Server.Shared_cache.query_get_set cache ~query:0)

(* ------------------------------------------------------------------ *)
(* Determinism                                                         *)
(* ------------------------------------------------------------------ *)

let test_deterministic_replay () =
  let schema = Sitegen.University.schema and registry = Sitegen.University.view in
  let entries =
    Server.Workload.generate ~seed:9 ~n:12 ()
  in
  let run () =
    let netmodel = Websim.Netmodel.create (Websim.Netmodel.config ~seed:3 ()) in
    let _, rep =
      run_workload ~netmodel schema
        (Sitegen.University.site (Sitegen.University.build ()))
        registry entries
    in
    rep
  in
  let a = run () and b = run () in
  check int_t "same result count" (List.length a.Server.Sched.results)
    (List.length b.Server.Sched.results);
  List.iter2
    (fun (ra : Server.Sched.result) (rb : Server.Sched.result) ->
      check bool_t "same rows" true
        (Adm.Relation.equal ra.Server.Sched.rows rb.Server.Sched.rows);
      check (Alcotest.float 1e-9) "same elapsed" ra.Server.Sched.elapsed_ms
        rb.Server.Sched.elapsed_ms)
    a.Server.Sched.results b.Server.Sched.results;
  check (Alcotest.float 1e-9) "same makespan" a.Server.Sched.makespan_ms
    b.Server.Sched.makespan_ms;
  check int_t "same distinct GETs" a.Server.Sched.ledger.Server.Shared_cache.distinct_gets
    b.Server.Sched.ledger.Server.Shared_cache.distinct_gets

(* ------------------------------------------------------------------ *)
(* The coalescing ledger and its invariant                             *)
(* ------------------------------------------------------------------ *)

let test_ledger_invariant () =
  let schema = Sitegen.University.schema and registry = Sitegen.University.view in
  let entries = Server.Workload.generate ~seed:4 ~n:16 () in
  let _, rep =
    run_workload schema
      (Sitegen.University.site (Sitegen.University.build ()))
      registry entries
  in
  let l = rep.Server.Sched.ledger in
  check int_t "cross hits = sum - distinct"
    (l.Server.Shared_cache.sum_per_query - l.Server.Shared_cache.distinct_gets)
    l.Server.Shared_cache.cross_query_hits;
  check bool_t "overlapping workload coalesces" true
    (l.Server.Shared_cache.distinct_gets < l.Server.Shared_cache.sum_per_query);
  check bool_t "ratio below 1" true (l.Server.Shared_cache.sharing_ratio < 1.0);
  check int_t "per-query entries" 16
    (List.length l.Server.Shared_cache.per_query)

(* ------------------------------------------------------------------ *)
(* Exactness against isolated evaluation (the issue's property)        *)
(* ------------------------------------------------------------------ *)

let union_sorted sets =
  List.concat sets |> List.sort_uniq String.compare

let check_workload_exact name schema site registry entries =
  let cache, rep = run_workload schema site registry entries in
  let isolated_rows, isolated_sets =
    List.split (List.map (isolated schema site registry) entries)
  in
  List.iteri
    (fun i (r : Server.Sched.result) ->
      check bool_t (Fmt.str "%s q%d complete" name i) true
        r.Server.Sched.completeness.Server.Sched.complete;
      check bool_t (Fmt.str "%s q%d rows = isolated" name i) true
        (Adm.Relation.equal r.Server.Sched.rows (List.nth isolated_rows i)))
    rep.Server.Sched.results;
  let shared_set =
    List.sort String.compare (Server.Shared_cache.distinct_get_set cache)
  in
  check bool_t (Fmt.str "%s shared GET set = union of isolated" name) true
    (shared_set = union_sorted isolated_sets)

let test_exact_all_sites_seeded () =
  List.iter
    (fun (name, schema, mk_site, mk_registry, templates) ->
      let registry = mk_registry schema in
      List.iter
        (fun seed ->
          let entries = Server.Workload.generate ~templates ~seed ~n:8 () in
          check_workload_exact
            (Fmt.str "%s/seed%d" name seed)
            schema (mk_site ()) registry entries)
        [ 7; 21; 42 ])
    sites

(* The same property as a QCheck generator over random seeds and
   workload sizes on the university site. *)
let prop_concurrent_equals_isolated =
  QCheck.Test.make ~name:"concurrent = isolated (rows and GET sets)" ~count:12
    QCheck.(pair (int_bound 1000) (int_range 1 10))
    (fun (seed, n) ->
      let schema = Sitegen.University.schema in
      let registry = Sitegen.University.view in
      let site = Sitegen.University.site (Sitegen.University.build ()) in
      let entries = Server.Workload.generate ~seed ~n () in
      let cache, rep = run_workload schema site registry entries in
      let isolated_rows, isolated_sets =
        List.split (List.map (isolated schema site registry) entries)
      in
      List.for_all
        (fun (r : Server.Sched.result) ->
          Adm.Relation.equal r.Server.Sched.rows
            (List.nth isolated_rows r.Server.Sched.qid))
        rep.Server.Sched.results
      && List.sort String.compare (Server.Shared_cache.distinct_get_set cache)
         = union_sorted isolated_sets)

(* ------------------------------------------------------------------ *)
(* Faults: no query errors with retries >= max_consecutive             *)
(* ------------------------------------------------------------------ *)

let test_exact_under_faults () =
  let schema = Sitegen.University.schema and registry = Sitegen.University.view in
  let site = Sitegen.University.site (Sitegen.University.build ()) in
  let entries = Server.Workload.generate ~seed:13 ~n:8 () in
  let netmodel =
    Websim.Netmodel.create
      (Websim.Netmodel.config ~seed:17 ~fault_rate:0.10 ~max_consecutive:2 ())
  in
  let cache =
    Server.Shared_cache.create
      ~config:(Websim.Fetcher.config ~cache_capacity:8192 ~retries:3 ())
      ~netmodel (Websim.Http.connect site)
  in
  let rep =
    Server.Sched.run Server.Sched.default_config cache schema
      (specs_of schema site registry entries)
  in
  let isolated_rows = List.map (fun e -> fst (isolated schema site registry e)) entries in
  List.iteri
    (fun i (r : Server.Sched.result) ->
      check bool_t (Fmt.str "q%d complete under faults" i) true
        r.Server.Sched.completeness.Server.Sched.complete;
      check bool_t (Fmt.str "q%d exact under faults" i) true
        (Adm.Relation.equal r.Server.Sched.rows (List.nth isolated_rows i)))
    rep.Server.Sched.results;
  check bool_t "retries happened" true
    (rep.Server.Sched.fetch.Websim.Fetcher.retries > 0)

(* ------------------------------------------------------------------ *)
(* Deadlines: graceful degradation, not errors                         *)
(* ------------------------------------------------------------------ *)

let test_deadline_partial () =
  let schema = Sitegen.University.schema and registry = Sitegen.University.view in
  let site = Sitegen.University.site (Sitegen.University.build ()) in
  (* slow network, tiny budget: deadlines must fire *)
  let netmodel = Websim.Netmodel.create (Websim.Netmodel.config ~seed:5 ()) in
  let entries =
    List.map
      (fun (e : Server.Workload.entry) ->
        { e with Server.Workload.deadline_ms = Some 1.0 })
      (Server.Workload.generate ~seed:2 ~n:6 ())
  in
  let _, rep = run_workload ~netmodel schema site registry entries in
  check int_t "every query reports" 6 (List.length rep.Server.Sched.results);
  let hit =
    List.filter
      (fun (r : Server.Sched.result) ->
        r.Server.Sched.completeness.Server.Sched.deadline_hit)
      rep.Server.Sched.results
  in
  check bool_t "some deadline fired" true (hit <> []);
  List.iter
    (fun (r : Server.Sched.result) ->
      check bool_t "deadline result not marked complete" false
        r.Server.Sched.completeness.Server.Sched.complete)
    hit

(* ------------------------------------------------------------------ *)
(* Circuit open: stale-serve through the materialized store            *)
(* ------------------------------------------------------------------ *)

let test_breaker_open_stale_serve () =
  let schema = Sitegen.University.schema and registry = Sitegen.University.view in
  let site = Sitegen.University.site (Sitegen.University.build ()) in
  let store = Matview.materialize schema (Websim.Http.connect site) in
  let netmodel = Websim.Netmodel.create (Websim.Netmodel.config ~seed:8 ()) in
  let entries = Server.Workload.generate ~seed:3 ~n:4 () in
  let isolated_rows = List.map (fun e -> fst (isolated schema site registry e)) entries in
  let cache = shared_cache ~netmodel site in
  Websim.Fetcher.open_breaker (Server.Shared_cache.fetcher cache) ~for_ms:1e9;
  let rep =
    Server.Sched.run ~stale:store Server.Sched.default_config cache schema
      (specs_of schema site registry entries)
  in
  List.iteri
    (fun i (r : Server.Sched.result) ->
      check bool_t (Fmt.str "q%d served stale, not failed" i) true
        (r.Server.Sched.completeness.Server.Sched.stale_pages > 0);
      check bool_t (Fmt.str "q%d not complete" i) false
        r.Server.Sched.completeness.Server.Sched.complete;
      (* the store is fresh, so the stale rows are the true rows *)
      check bool_t (Fmt.str "q%d stale rows = fresh rows" i) true
        (Adm.Relation.equal r.Server.Sched.rows (List.nth isolated_rows i)))
    rep.Server.Sched.results;
  check int_t "nothing went to the wire" 0
    rep.Server.Sched.fetch.Websim.Fetcher.gets;
  check bool_t "fast-fails recorded" true
    (rep.Server.Sched.fetch.Websim.Fetcher.breaker_fastfails > 0)

(* ------------------------------------------------------------------ *)
(* Admission control and policies                                      *)
(* ------------------------------------------------------------------ *)

let test_admission_bounds () =
  let schema = Sitegen.University.schema and registry = Sitegen.University.view in
  let site = Sitegen.University.site (Sitegen.University.build ()) in
  let entries = Server.Workload.generate ~seed:6 ~n:10 () in
  let config = Server.Sched.config ~concurrency:2 () in
  let _, rep = run_workload ~config schema site registry entries in
  check bool_t "peak residents bounded by concurrency" true
    (rep.Server.Sched.peak_resident_queries <= 2);
  check int_t "all queries finished" 10 (List.length rep.Server.Sched.results);
  (* a one-row budget forces near-serial residency but must not stall *)
  let config = Server.Sched.config ~concurrency:8 ~max_resident_rows:1 () in
  let _, rep = run_workload ~config schema site registry entries in
  check int_t "tiny row budget still finishes" 10
    (List.length rep.Server.Sched.results)

let test_priority_first () =
  let schema = Sitegen.University.schema and registry = Sitegen.University.view in
  let site = Sitegen.University.site (Sitegen.University.build ()) in
  let netmodel = Websim.Netmodel.create (Websim.Netmodel.config ~seed:4 ()) in
  let sql = "SELECT p.PName, p.Rank FROM Professor p" in
  let entries =
    [
      Server.Workload.entry ~priority:0 sql;
      Server.Workload.entry ~priority:0 sql;
      Server.Workload.entry ~priority:5 sql;
    ]
  in
  let config = Server.Sched.config ~policy:Server.Sched.Priority () in
  let _, rep = run_workload ~netmodel ~config schema site registry entries in
  let elapsed qid =
    (List.find
       (fun (r : Server.Sched.result) -> r.Server.Sched.qid = qid)
       rep.Server.Sched.results)
      .Server.Sched.elapsed_ms
  in
  check bool_t "high priority finishes no later than the others" true
    (elapsed 2 <= elapsed 0 && elapsed 2 <= elapsed 1)

(* ------------------------------------------------------------------ *)
(* Workload files                                                      *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Domain-count invariance: the multicore run is byte-identical        *)
(* ------------------------------------------------------------------ *)

(* One run at [domains], with a real pool attached for the parallel
   extraction tier, returning everything an observer could compare:
   per-query rows/completeness/steps, the distinct-GET set in
   first-request order, and the sharing ledger. *)
let observe_run ~domains ~seed schema site registry templates =
  let entries = Server.Workload.generate ~templates ~seed ~n:8 () in
  let specs = specs_of schema site registry entries in
  let pool = if domains > 1 then Some (Server.Pool.create ~domains) else None in
  let netmodel = Websim.Netmodel.create (Websim.Netmodel.config ~seed ()) in
  let cache =
    Server.Shared_cache.create ?pool ~config:server_config ~netmodel
      (Websim.Http.connect site)
  in
  let rep =
    Server.Sched.run (Server.Sched.config ~domains ()) cache schema specs
  in
  Option.iter Server.Pool.shutdown pool;
  ( List.map
      (fun (r : Server.Sched.result) ->
        (r.Server.Sched.qid, r.Server.Sched.rows, r.Server.Sched.completeness,
         r.Server.Sched.steps))
      rep.Server.Sched.results,
    Server.Shared_cache.distinct_get_set cache,
    Server.Shared_cache.ledger cache,
    rep )

let same_observation (res_a, gets_a, ledger_a, _) (res_b, gets_b, ledger_b, _) =
  List.length res_a = List.length res_b
  && List.for_all2
       (fun (qa, rows_a, ca, sa) (qb, rows_b, cb, sb) ->
         qa = qb && Adm.Relation.equal rows_a rows_b && ca = cb && sa = sb)
       res_a res_b
  && gets_a = gets_b
  && ledger_a = ledger_b

(* The issue's property: for every site, every seed in {7, 21, 42} and
   every domain count, the N-domain run is byte-identical to the
   1-domain run — same per-query rows, same distinct-GET set (in
   first-request order, not just as a set), same sharing ledger. Only
   the time accounting may differ. *)
let prop_domains_invariant =
  let cases =
    List.concat_map
      (fun site_ix ->
        List.concat_map
          (fun seed -> List.map (fun d -> (site_ix, seed, d)) [ 2; 4; 8 ])
          [ 7; 21; 42 ])
      [ 0; 1; 2 ]
  in
  QCheck.Test.make
    ~name:"N-domain run = 1-domain run (rows, GET sets, ledger)" ~count:10
    (QCheck.make
       ~print:(fun (i, seed, d) -> Fmt.str "site=%d seed=%d domains=%d" i seed d)
       (QCheck.Gen.oneofl cases))
    (fun (site_ix, seed, domains) ->
      let _, schema, mk_site, mk_registry, templates = List.nth sites site_ix in
      let registry = mk_registry schema in
      let site = mk_site () in
      let base = observe_run ~domains:1 ~seed schema site registry templates in
      let multi = observe_run ~domains ~seed schema site registry templates in
      same_observation base multi)

(* Lane accounting at D > 1: makespan covers every lane's charged
   work (frontiers may additionally include dependency stalls), every
   query's elapsed decomposes as service + wait, and the lane busy
   times sum to the total charged service. *)
let test_lane_accounting () =
  let schema = Sitegen.University.schema and registry = Sitegen.University.view in
  let site = Sitegen.University.site (Sitegen.University.build ()) in
  let _, _, _, rep =
    observe_run ~domains:4 ~seed:7 schema site registry
      Server.Workload.university_templates
  in
  check int_t "domains recorded" 4 rep.Server.Sched.domains;
  check int_t "one clock per lane" 4
    (List.length rep.Server.Sched.lane_busy_ms);
  let max_lane =
    List.fold_left Float.max 0.0 rep.Server.Sched.lane_busy_ms
  in
  check bool_t "makespan covers the busiest lane" true
    (rep.Server.Sched.makespan_ms >= max_lane -. 1e-6);
  let total_service =
    List.fold_left
      (fun acc (r : Server.Sched.result) -> acc +. r.Server.Sched.service_ms)
      0.0 rep.Server.Sched.results
  in
  let total_busy =
    List.fold_left ( +. ) 0.0 rep.Server.Sched.lane_busy_ms
  in
  check bool_t "lane busy = charged service"
    true
    (Float.abs (total_busy -. total_service) < 1e-6);
  List.iter
    (fun (r : Server.Sched.result) ->
      check bool_t "elapsed = service + wait" true
        (Float.abs
           (r.Server.Sched.elapsed_ms
           -. (r.Server.Sched.service_ms +. r.Server.Sched.wait_ms))
        < 1e-6);
      check bool_t "lane in range" true
        (r.Server.Sched.lane >= 0 && r.Server.Sched.lane < 4))
    rep.Server.Sched.results

(* ------------------------------------------------------------------ *)
(* The domain pool itself                                              *)
(* ------------------------------------------------------------------ *)

let test_pool () =
  let xs = List.init 500 Fun.id in
  let squares = List.map (fun x -> x * x) xs in
  (* inline path: domains = 1 spawns nothing *)
  let p1 = Server.Pool.create ~domains:1 in
  check int_t "size clamps to >= 1" 1 (Server.Pool.size p1);
  check bool_t "inline map preserves order" true
    (Server.Pool.map p1 (fun x -> x * x) xs = squares);
  Server.Pool.shutdown p1;
  let p = Server.Pool.create ~domains:4 in
  check int_t "size" 4 (Server.Pool.size p);
  check bool_t "parallel map preserves order" true
    (Server.Pool.map p (fun x -> x * x) xs = squares);
  check bool_t "map_array preserves order" true
    (Server.Pool.map_array p (fun x -> x + 1) (Array.of_list xs)
    = Array.of_list (List.map (fun x -> x + 1) xs));
  (* a task exception reaches the caller, and the pool survives it *)
  (match
     Server.Pool.map p (fun x -> if x = 250 then failwith "boom" else x) xs
   with
  | _ -> Alcotest.fail "expected the task exception to propagate"
  | exception Failure msg -> check Alcotest.string "first failure" "boom" msg);
  check bool_t "pool usable after a failed batch" true
    (Server.Pool.map p string_of_int xs = List.map string_of_int xs);
  Server.Pool.shutdown p;
  Server.Pool.shutdown p (* idempotent *)

(* ------------------------------------------------------------------ *)
(* Sharded tuple cache: stripe accounting                              *)
(* ------------------------------------------------------------------ *)

let test_shard_contention_report () =
  let schema = Sitegen.University.schema and registry = Sitegen.University.view in
  let site = Sitegen.University.site (Sitegen.University.build ()) in
  let cache = shared_cache site in
  check int_t "default shard count" 16 (Server.Shared_cache.shard_count cache);
  let entries = Server.Workload.generate ~seed:11 ~n:6 () in
  let _ =
    Server.Sched.run Server.Sched.default_config cache schema
      (specs_of schema site registry entries)
  in
  let c = Server.Shared_cache.contention cache in
  check int_t "shards" 16 c.Server.Shared_cache.shards;
  check bool_t "tuples cached" true (c.Server.Shared_cache.tuples_cached > 0);
  check bool_t "locks were taken" true
    (c.Server.Shared_cache.lock_acquisitions
    >= c.Server.Shared_cache.tuples_cached);
  check bool_t "fullest shard is plausible" true
    (c.Server.Shared_cache.max_shard_tuples > 0
    && c.Server.Shared_cache.max_shard_tuples
       <= c.Server.Shared_cache.tuples_cached)

let test_workload_parsing () =
  let entries =
    Server.Workload.of_lines
      [
        "# comment";
        "";
        "SELECT p.PName FROM Professor p";
        "2|SELECT d.DName FROM Dept d";
        "  ";
      ]
  in
  check int_t "two entries" 2 (List.length entries);
  let e1 = List.nth entries 0 and e2 = List.nth entries 1 in
  check bool_t "plain line" true
    (e1.Server.Workload.sql = "SELECT p.PName FROM Professor p"
    && e1.Server.Workload.priority = 0);
  check bool_t "priority prefix" true
    (e2.Server.Workload.sql = "SELECT d.DName FROM Dept d"
    && e2.Server.Workload.priority = 2)

let test_generator_deterministic () =
  let a = Server.Workload.generate ~seed:42 ~n:20 () in
  let b = Server.Workload.generate ~seed:42 ~n:20 () in
  let c = Server.Workload.generate ~seed:43 ~n:20 () in
  check bool_t "same seed, same workload" true (a = b);
  check bool_t "different seed differs" true (a <> c)

let suite =
  ( "server",
    [
      Alcotest.test_case "scheduler: deterministic replay" `Quick
        test_deterministic_replay;
      Alcotest.test_case "shared cache: ledger invariant and coalescing" `Quick
        test_ledger_invariant;
      Alcotest.test_case "exactness: seeds 7/21/42 on all three sites" `Slow
        test_exact_all_sites_seeded;
      QCheck_alcotest.to_alcotest prop_concurrent_equals_isolated;
      Alcotest.test_case "faults: exact and complete at 10% with retries"
        `Quick test_exact_under_faults;
      Alcotest.test_case "deadlines: partial results, no errors" `Quick
        test_deadline_partial;
      Alcotest.test_case "breaker open: stale-serve degradation" `Quick
        test_breaker_open_stale_serve;
      Alcotest.test_case "admission control bounds residency" `Quick
        test_admission_bounds;
      Alcotest.test_case "priority policy finishes urgent first" `Quick
        test_priority_first;
      QCheck_alcotest.to_alcotest prop_domains_invariant;
      Alcotest.test_case "lane accounting at 4 domains" `Quick
        test_lane_accounting;
      Alcotest.test_case "domain pool: order, failures, reuse" `Quick
        test_pool;
      Alcotest.test_case "sharded tuple cache: stripe accounting" `Quick
        test_shard_contention_report;
      Alcotest.test_case "workload files parse" `Quick test_workload_parsing;
      Alcotest.test_case "workload generator is seeded" `Quick
        test_generator_deterministic;
    ] )
