(* The static analyzer: one unit test per diagnostic code (deliberately
   broken expressions, schemas, queries and registries), the soundness
   judgment, and the master property — every candidate plan the planner
   enumerates, on all three generated sites, passes the typechecker
   with zero errors and zero soundness violations. *)

open Webviews

let uni_schema = Sitegen.University.schema
let uni_view = Sitegen.University.view
let cat_schema = Sitegen.Catalog.schema
let cat_view = Sitegen.Catalog.view
let bib_schema = Sitegen.Bibliography.schema
let bib_view = View.auto_registry Sitegen.Bibliography.schema

let codes ds =
  List.sort_uniq String.compare
    (List.map (fun (d : Diagnostic.t) -> d.Diagnostic.code) ds)

let has_code c ds = List.mem c (codes ds)

let check_code name c ds =
  Alcotest.(check bool)
    (Fmt.str "%s reports %s (got %a)" name c Fmt.(Dump.list string) (codes ds))
    true (has_code c ds)

let check_no_errors name ds =
  Alcotest.(check (list string))
    (name ^ " has no errors") []
    (List.map Diagnostic.to_string (Diagnostic.errors ds))

(* The canonical well-typed navigation: all professor pages. *)
let profs_nav =
  Nalg.follow
    (Nalg.unnest (Nalg.entry "ProfListPage") "ProfListPage.ProfList")
    "ProfListPage.ProfList.ToProf" ~scheme:"ProfPage"

(* --- typed NALG inference (E01xx) ---------------------------------- *)

let test_infer_env () =
  let env, ds = Typecheck.infer uni_schema profs_nav in
  check_no_errors "profs_nav" ds;
  Alcotest.(check (list string))
    "env mirrors output_attrs"
    (Nalg.output_attrs uni_schema profs_nav)
    (List.map fst env);
  Alcotest.(check bool)
    "URL is a link to its own scheme" true
    (match List.assoc_opt "ProfPage.URL" env with
    | Some (Adm.Webtype.Link "ProfPage") -> true
    | _ -> false);
  Alcotest.(check bool)
    "Rank is text" true
    (List.assoc_opt "ProfPage.Rank" env = Some Adm.Webtype.Text)

let test_e0101_unknown_scheme () =
  check_code "entry" "E0101" (Typecheck.check uni_schema (Nalg.entry "Nowhere"));
  check_code "follow" "E0101"
    (Typecheck.check uni_schema
       (Nalg.follow profs_nav "ProfPage.ToDept" ~scheme:"Nowhere"))

let test_e0102_not_entry () =
  check_code "entry ProfPage" "E0102"
    (Typecheck.check uni_schema (Nalg.entry "ProfPage"))

let test_e0103_unavailable_attr () =
  let sel =
    Nalg.select [ Pred.eq_const "ProfPage.Nope" (Adm.Value.text "x") ] profs_nav
  in
  check_code "selection" "E0103" (Typecheck.check uni_schema sel);
  check_code "projection" "E0103"
    (Typecheck.check uni_schema (Nalg.project [ "ProfPage.Nope" ] profs_nav));
  check_code "join key" "E0103"
    (Typecheck.check uni_schema
       (Nalg.join
          [ ("ProfPage.Nope", "DeptPage.DName") ]
          profs_nav (Nalg.entry "DeptListPage")))

let test_e0104_unnest_non_list () =
  check_code "unnest of text" "E0104"
    (Typecheck.check uni_schema (Nalg.unnest profs_nav "ProfPage.Rank"))

let test_e0105_ambiguous_attr () =
  check_code "join of same alias" "E0105"
    (Typecheck.check uni_schema
       (Nalg.join [] (Nalg.entry "ProfListPage") (Nalg.entry "ProfListPage")))

let test_e0106_type_mismatch () =
  let sel =
    Nalg.select [ Pred.eq_const "ProfPage.Rank" (Adm.Value.Int 3) ] profs_nav
  in
  check_code "text vs int" "E0106" (Typecheck.check uni_schema sel);
  let multi =
    Nalg.select
      [ Pred.eq_const "ProfListPage.ProfList" (Adm.Value.text "x") ]
      (Nalg.entry "ProfListPage")
  in
  check_code "multi-valued operand" "E0106" (Typecheck.check uni_schema multi)

let test_e0107_external_remains () =
  check_code "external" "E0107"
    (Typecheck.check uni_schema (Nalg.external_ "Professor"))

let test_e0108_follow_non_link () =
  check_code "follow of text" "E0108"
    (Typecheck.check uni_schema
       (Nalg.follow profs_nav "ProfPage.Rank" ~scheme:"DeptPage"))

let test_e0109_follow_target_mismatch () =
  check_code "follow to wrong scheme" "E0109"
    (Typecheck.check uni_schema
       (Nalg.follow profs_nav "ProfPage.ToDept" ~scheme:"CoursePage"))

let test_w0110_duplicate_projection () =
  let ds =
    Typecheck.check uni_schema
      (Nalg.project [ "ProfPage.PName"; "ProfPage.PName" ] profs_nav)
  in
  check_code "duplicate projection" "W0110" ds;
  check_no_errors "duplicate projection is only a warning" ds

let test_diagnostic_path_locates () =
  (* The broken unnest sits under a projection: its diagnostic's path
     must walk back to the unnest operator. *)
  let bad = Nalg.unnest profs_nav "ProfPage.Rank" in
  let e = Nalg.project [ "ProfPage.PName" ] bad in
  let ds = Typecheck.check uni_schema e in
  let d =
    List.find (fun (d : Diagnostic.t) -> String.equal d.Diagnostic.code "E0104") ds
  in
  Alcotest.(check (list string)) "path" [ "project" ] d.Diagnostic.path;
  match Explain.locate e d.Diagnostic.path with
  | Some node ->
    Alcotest.(check string) "locates the unnest" "◦ ProfPage.Rank"
      (Explain.node_label node)
  | None -> Alcotest.fail "path did not resolve"

(* --- schema lint (E02xx) ------------------------------------------- *)

let text = Adm.Webtype.Text
let link s = Adm.Webtype.Link s
let attr = Adm.Page_scheme.attr
let path = Adm.Constraints.path

let fixture ?(links = []) ?(incls = []) schemes =
  Adm.Schema.make ~name:"Fixture" ~schemes ~link_constraints:links
    ~inclusions:incls

let home ?(extra = []) () =
  Adm.Page_scheme.make ~entry_url:"/index.html" "Home"
    ([ attr "Title" text; attr "ToLeaf" (link "Leaf") ] @ extra)

let leaf = Adm.Page_scheme.make "Leaf" [ attr "Name" text ]

let lc ?(link = path "Home" [ "ToLeaf" ]) ?(src = path "Home" [ "Title" ])
    ?(tgt_scheme = "Leaf") ?(tgt_attr = "Name") () =
  Adm.Constraints.link_constraint ~link ~source_attr:src
    ~target_scheme:tgt_scheme ~target_attr:tgt_attr

let test_schema_lint_codes () =
  let lint = Typecheck.lint_schema in
  check_code "unknown scheme in path" "E0201"
    (lint
       (fixture [ home (); leaf ]
          ~links:[ lc ~link:(path "Ghost" [ "L" ]) ~src:(path "Ghost" [ "A" ]) () ]));
  check_code "unresolved path" "E0202"
    (lint (fixture [ home (); leaf ] ~links:[ lc ~link:(path "Home" [ "Nope" ]) () ]));
  check_code "constraint on non-link" "E0203"
    (lint (fixture [ home (); leaf ] ~links:[ lc ~link:(path "Home" [ "Title" ]) () ]));
  check_code "target scheme mismatch" "E0204"
    (lint (fixture [ home (); leaf ] ~links:[ lc ~tgt_scheme:"Home" ~tgt_attr:"Title" () ]));
  let with_list = home ~extra:[ attr "Items" (Adm.Webtype.List [ ("X", text) ]) ] () in
  check_code "multi-valued source" "E0205"
    (lint (fixture [ with_list; leaf ] ~links:[ lc ~src:(path "Home" [ "Items" ]) () ]));
  check_code "unknown target attribute" "E0206"
    (lint (fixture [ home (); leaf ] ~links:[ lc ~tgt_attr:"Nope" () ]));
  let with_int = home ~extra:[ attr "Num" Adm.Webtype.Int ] () in
  check_code "incompatible constraint types" "E0214"
    (lint (fixture [ with_int; leaf ] ~links:[ lc ~src:(path "Home" [ "Num" ]) () ]));
  check_code "inclusion over non-links" "E0207"
    (lint
       (fixture [ home (); leaf ]
          ~incls:
            [
              Adm.Constraints.inclusion ~sub:(path "Home" [ "Title" ])
                ~sup:(path "Home" [ "ToLeaf" ]);
            ]));
  let two_links = home ~extra:[ attr "ToHome" (link "Home") ] () in
  check_code "inclusion targets differ" "E0208"
    (lint
       (fixture [ two_links; leaf ]
          ~incls:
            [
              Adm.Constraints.inclusion ~sub:(path "Home" [ "ToLeaf" ])
                ~sup:(path "Home" [ "ToHome" ]);
            ]));
  check_code "dangling link target" "E0209"
    (lint (fixture [ home ~extra:[ attr "ToGhost" (link "Ghost") ] (); leaf ]));
  check_code "no entry point" "E0211" (lint (fixture [ leaf ]));
  check_code "duplicate scheme name" "E0212" (lint (fixture [ home (); leaf; leaf ]));
  check_code "duplicate attribute" "E0213"
    (lint
       (fixture
          [
            home ~extra:[ attr "Items" (Adm.Webtype.List [ ("X", text); ("X", text) ]) ] ();
            leaf;
          ]))

let test_w0210_unreachable () =
  let island = Adm.Page_scheme.make ~entry_url:"/i.html" "Home" [ attr "Title" text ] in
  let ds = Typecheck.lint_schema (fixture [ island; leaf ]) in
  check_code "unreachable scheme" "W0210" ds;
  check_no_errors "unreachable is only a warning" ds

let test_schema_lint_clean_sites () =
  check_no_errors "university schema" (Typecheck.lint_schema uni_schema);
  check_no_errors "catalog schema" (Typecheck.lint_schema cat_schema);
  check_no_errors "bibliography schema" (Typecheck.lint_schema bib_schema)

(* --- query lint (E03xx) -------------------------------------------- *)

let test_query_lint_codes () =
  let uni sql = Typecheck.lint_sql uni_schema uni_view sql in
  check_code "unknown relation" "E0301" (uni "SELECT n.X FROM Nope n");
  check_code "unknown alias" "E0303"
    (Typecheck.lint_query uni_schema uni_view
       {
         Conjunctive.select = [ "q.PName" ];
         from = [ Conjunctive.source ~alias:"p" "Professor" ];
         where = [];
       });
  check_code "unknown attribute" "E0304" (uni "SELECT p.Nope FROM Professor p");
  check_code "type mismatch" "E0305"
    (Typecheck.lint_sql cat_schema cat_view
       "SELECT p.PName FROM Product p WHERE p.Price = 'expensive'");
  check_code "parse error" "E0308" (uni "SELECT FROM WHERE")

let test_e0302_duplicate_alias () =
  let q =
    {
      Conjunctive.select = [ "p.PName" ];
      from = [ Conjunctive.source ~alias:"p" "Professor"; Conjunctive.source ~alias:"p" "Dept" ];
      where = [];
    }
  in
  check_code "duplicate alias" "E0302" (Typecheck.lint_query uni_schema uni_view q)

let test_w0306_cartesian () =
  let ds =
    Typecheck.lint_sql uni_schema uni_view
      "SELECT p.PName, d.DName FROM Professor p, Dept d"
  in
  check_code "cartesian product" "W0306" ds;
  check_no_errors "cartesian is only a warning" ds

let test_w0307_always_false () =
  (* contradictory constant equalities, via SQL *)
  check_code "contradictory equalities" "W0307"
    (Typecheck.lint_sql uni_schema uni_view
       "SELECT p.PName FROM Professor p WHERE p.Rank = 'Full' AND p.Rank = 'Associate'");
  (* constant-constant and self-comparison atoms, built directly *)
  let q where =
    {
      Conjunctive.select = [ "p.PName" ];
      from = [ Conjunctive.source ~alias:"p" "Professor" ];
      where;
    }
  in
  check_code "false constant comparison" "W0307"
    (Typecheck.lint_query uni_schema uni_view
       (q [ Pred.atom (Pred.Const (Adm.Value.text "a")) Pred.Eq (Pred.Const (Adm.Value.text "b")) ]));
  check_code "self-inequality" "W0307"
    (Typecheck.lint_query uni_schema uni_view
       (q [ Pred.atom (Pred.Attr "p.PName") Pred.Neq (Pred.Attr "p.PName") ]))

(* --- registry lint (E05xx) ----------------------------------------- *)

let test_registry_lint_codes () =
  let bad_nav =
    View.relation ~name:"Bad" ~attrs:[ "R" ]
      ~navigations:
        [ View.navigation ~bindings:[ ("R", "ProfPage.Rank") ] (Nalg.entry "ProfPage") ]
      ()
  in
  check_code "ill-typed navigation" "E0501"
    (Typecheck.lint_registry uni_schema [ bad_nav ]);
  let bad_binding =
    View.relation ~name:"Bad" ~attrs:[ "R" ]
      ~navigations:[ View.navigation ~bindings:[ ("R", "ProfPage.Nope") ] profs_nav ]
      ()
  in
  check_code "binding to unproduced attribute" "E0502"
    (Typecheck.lint_registry uni_schema [ bad_binding ]);
  let conflicting =
    View.relation ~name:"Mixed" ~attrs:[ "X" ]
      ~navigations:
        [
          View.navigation
            ~bindings:[ ("X", "ProfListPage.URL") ]
            (Nalg.entry "ProfListPage");
          View.navigation ~bindings:[ ("X", "ProfPage.Rank") ] profs_nav;
        ]
      ()
  in
  check_code "conflicting types across navigations" "E0503"
    (Typecheck.lint_registry uni_schema [ conflicting ])

let test_registry_lint_clean_sites () =
  check_no_errors "university view" (Typecheck.lint_registry uni_schema uni_view);
  check_no_errors "catalog view" (Typecheck.lint_registry cat_schema cat_view);
  check_no_errors "bibliography auto view" (Typecheck.lint_registry bib_schema bib_view)

(* --- rewrite soundness (E04xx) ------------------------------------- *)

let test_soundness () =
  Alcotest.(check (list string))
    "identical plans are sound" []
    (List.map Diagnostic.to_string
       (Typecheck.soundness uni_schema ~parent:profs_nav ~child:profs_nav));
  check_code "ill-typed child" "E0402"
    (Typecheck.soundness uni_schema ~parent:profs_nav
       ~child:(Nalg.unnest profs_nav "ProfPage.Rank"));
  check_code "output type changed" "E0403"
    (Typecheck.soundness uni_schema
       ~parent:(Nalg.project [ "ProfPage.PName" ] profs_nav)
       ~child:(Nalg.project [ "ProfPage.PName"; "ProfPage.Email" ] profs_nav));
  Alcotest.(check (list string))
    "ill-typed parent yields no verdict" []
    (List.map Diagnostic.to_string
       (Typecheck.soundness uni_schema ~parent:(Nalg.entry "Nowhere")
          ~child:profs_nav))

(* --- structural equality and memoized output_attrs ----------------- *)

let test_structural_equal () =
  let sel e = Nalg.select [ Pred.eq_const "ProfPage.Rank" (Adm.Value.text "Full") ] e in
  Alcotest.(check bool) "equal to itself" true (Nalg.equal (sel profs_nav) (sel profs_nav));
  Alcotest.(check bool) "different predicate" false
    (Nalg.equal (sel profs_nav)
       (Nalg.select [ Pred.eq_const "ProfPage.Rank" (Adm.Value.text "Assoc") ] profs_nav));
  Alcotest.(check bool) "different shape" false
    (Nalg.equal profs_nav (Nalg.entry "ProfListPage"))

let test_output_attrs_memo () =
  let exprs =
    [
      profs_nav;
      Nalg.project [ "ProfPage.PName" ] profs_nav;
      Nalg.join [ ("ProfPage.DName", "DeptPage.DName") ] profs_nav
        (Nalg.follow
           (Nalg.unnest (Nalg.entry "DeptListPage") "DeptListPage.DeptList")
           "DeptListPage.DeptList.ToDept" ~scheme:"DeptPage");
    ]
  in
  let memo = Nalg.output_attrs_memo uni_schema in
  List.iter
    (fun e ->
      Alcotest.(check (list string))
        "memoized output_attrs agrees"
        (Nalg.output_attrs uni_schema e)
        (memo e))
    exprs

(* --- the planner property: every candidate typechecks -------------- *)

let empty_stats = Stats.create ()

let assert_outcome_clean site sql (o : Planner.outcome) =
  check_no_errors (Fmt.str "%s: %s planner diagnostics" site sql) o.Planner.diagnostics;
  List.iter
    (fun (p : Planner.plan) ->
      let env, ds = Typecheck.infer (match site with
        | "catalog" -> cat_schema
        | "bibliography" -> bib_schema
        | _ -> uni_schema)
        p.Planner.expr
      in
      check_no_errors (Fmt.str "%s: candidate of %s" site sql) ds;
      Alcotest.(check (list string))
        "candidate env mirrors output_attrs"
        (Nalg.output_attrs
           (match site with
           | "catalog" -> cat_schema
           | "bibliography" -> bib_schema
           | _ -> uni_schema)
           p.Planner.expr)
        (List.map fst env))
    o.Planner.candidates

let uni_queries =
  [
    "SELECT d.DName, d.Address FROM Dept d";
    "SELECT p.PName FROM Professor p WHERE p.Rank = 'Full'";
    "SELECT c.CName, ci.PName FROM Course c, CourseInstructor ci WHERE c.CName = ci.CName";
    "SELECT p.PName, p.Email FROM Professor p, ProfDept pd WHERE p.PName = pd.PName AND pd.DName = 'Computer Science'";
    "SELECT d.DName, p.PName FROM Dept d, ProfDept pd, Professor p WHERE d.DName = pd.DName AND pd.PName = p.PName";
  ]

let cat_queries =
  [
    "SELECT p.PName, p.Price FROM Product p WHERE p.Category = 'Audio'";
    "SELECT c.CatName FROM Category c";
    "SELECT p.PName FROM Product p, Brand b WHERE p.Brand = b.BrandName";
  ]

let test_university_candidates_typecheck () =
  List.iter
    (fun sql ->
      assert_outcome_clean "university" sql
        (Planner.plan_sql uni_schema empty_stats uni_view sql))
    uni_queries

let test_catalog_candidates_typecheck () =
  List.iter
    (fun sql ->
      assert_outcome_clean "catalog" sql
        (Planner.plan_sql cat_schema empty_stats cat_view sql))
    cat_queries

let test_bibliography_candidates_typecheck () =
  (* Queries derived from the auto-registry itself: one per external
     relation, selecting its first attribute. *)
  List.iter
    (fun (rel : View.relation) ->
      match rel.View.rel_attrs with
      | [] -> ()
      | a :: _ ->
        let sql = Fmt.str "SELECT x.%s FROM %s x" a rel.View.rel_name in
        assert_outcome_clean "bibliography" sql
          (Planner.plan_sql bib_schema empty_stats bib_view sql))
    bib_view

(* Randomized: connected conjunctive queries over the university view,
   several fixed seeds, every candidate of every plan typechecks. *)
let joinable =
  [
    (("Professor", "PName"), ("ProfDept", "PName"));
    (("Professor", "PName"), ("CourseInstructor", "PName"));
    (("Course", "CName"), ("CourseInstructor", "CName"));
    (("ProfDept", "DName"), ("Dept", "DName"));
  ]

let first_attr = function
  | "Professor" -> "PName"
  | "Course" -> "CName"
  | "CourseInstructor" -> "CName"
  | "ProfDept" -> "DName"
  | _ -> "DName"

let random_query st =
  let pick xs = List.nth xs (Random.State.int st (List.length xs)) in
  let seed_rel = pick [ "Professor"; "Course"; "Dept"; "ProfDept" ] in
  let rec grow rels joins fuel =
    if fuel = 0 then (rels, joins)
    else
      let candidates =
        List.filter_map
          (fun ((r1, a1), (r2, a2)) ->
            if List.mem r1 rels && not (List.mem r2 rels) then
              Some (r2, (r1, a1, r2, a2))
            else if List.mem r2 rels && not (List.mem r1 rels) then
              Some (r1, (r1, a1, r2, a2))
            else None)
          joinable
      in
      match candidates with
      | [] -> (rels, joins)
      | _ ->
        let rel, edge = pick candidates in
        grow (rel :: rels) (edge :: joins) (fuel - 1)
  in
  let rels, joins = grow [ seed_rel ] [] (Random.State.int st 3) in
  let select = List.map (fun r -> r ^ "." ^ first_attr r) rels in
  let where =
    List.map (fun (r1, a1, r2, a2) -> Pred.eq_attrs (r1 ^ "." ^ a1) (r2 ^ "." ^ a2)) joins
  in
  {
    Conjunctive.select;
    from = List.map (fun r -> Conjunctive.source r) rels;
    where;
  }

let test_random_candidates_typecheck () =
  List.iter
    (fun seed ->
      let st = Random.State.make [| seed |] in
      for _ = 1 to 8 do
        let q = random_query st in
        let o = Planner.enumerate uni_schema empty_stats uni_view q in
        assert_outcome_clean "university" (Fmt.str "%a" Conjunctive.pp q) o
      done)
    [ 7; 21; 42 ]

(* --- the cap diagnostic (W0401) ------------------------------------ *)

let test_w0401_cap () =
  let sql =
    "SELECT d.DName, p.PName FROM Dept d, ProfDept pd, Professor p \
     WHERE d.DName = pd.DName AND pd.PName = p.PName"
  in
  let o = Planner.plan_sql ~cap:5 uni_schema empty_stats uni_view sql in
  check_code "truncated enumeration" "W0401" o.Planner.diagnostics;
  Alcotest.(check bool) "still produced candidates" true (o.Planner.candidates <> []);
  let full = Planner.plan_sql uni_schema empty_stats uni_view sql in
  Alcotest.(check bool) "uncapped run reports no W0401" false
    (has_code "W0401" full.Planner.diagnostics)

let suite =
  ( "typecheck",
    [
      Alcotest.test_case "infer: env types and order" `Quick test_infer_env;
      Alcotest.test_case "E0101 unknown page-scheme" `Quick test_e0101_unknown_scheme;
      Alcotest.test_case "E0102 not an entry point" `Quick test_e0102_not_entry;
      Alcotest.test_case "E0103 unavailable attribute" `Quick test_e0103_unavailable_attr;
      Alcotest.test_case "E0104 unnest of non-list" `Quick test_e0104_unnest_non_list;
      Alcotest.test_case "E0105 ambiguous attribute" `Quick test_e0105_ambiguous_attr;
      Alcotest.test_case "E0106 predicate type mismatch" `Quick test_e0106_type_mismatch;
      Alcotest.test_case "E0107 external remains" `Quick test_e0107_external_remains;
      Alcotest.test_case "E0108 follow of non-link" `Quick test_e0108_follow_non_link;
      Alcotest.test_case "E0109 follow target mismatch" `Quick
        test_e0109_follow_target_mismatch;
      Alcotest.test_case "W0110 duplicate projection" `Quick
        test_w0110_duplicate_projection;
      Alcotest.test_case "diagnostic paths locate operators" `Quick
        test_diagnostic_path_locates;
      Alcotest.test_case "schema lint: one broken schema per rule" `Quick
        test_schema_lint_codes;
      Alcotest.test_case "W0210 unreachable page-scheme" `Quick test_w0210_unreachable;
      Alcotest.test_case "schema lint: generated sites are clean" `Quick
        test_schema_lint_clean_sites;
      Alcotest.test_case "query lint codes" `Quick test_query_lint_codes;
      Alcotest.test_case "E0302 duplicate FROM alias" `Quick test_e0302_duplicate_alias;
      Alcotest.test_case "W0306 Cartesian product" `Quick test_w0306_cartesian;
      Alcotest.test_case "W0307 always-false conditions" `Quick test_w0307_always_false;
      Alcotest.test_case "registry lint codes" `Quick test_registry_lint_codes;
      Alcotest.test_case "registry lint: site views are clean" `Quick
        test_registry_lint_clean_sites;
      Alcotest.test_case "soundness judgment" `Quick test_soundness;
      Alcotest.test_case "structural equality" `Quick test_structural_equal;
      Alcotest.test_case "output_attrs_memo agrees" `Quick test_output_attrs_memo;
      Alcotest.test_case "university: candidates typecheck" `Quick
        test_university_candidates_typecheck;
      Alcotest.test_case "catalog: candidates typecheck" `Quick
        test_catalog_candidates_typecheck;
      Alcotest.test_case "bibliography: candidates typecheck" `Quick
        test_bibliography_candidates_typecheck;
      Alcotest.test_case "random queries: candidates typecheck (seeds 7/21/42)"
        `Quick test_random_candidates_typecheck;
      Alcotest.test_case "W0401 cap diagnostic" `Quick test_w0401_cap;
    ] )
