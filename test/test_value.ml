(* Unit and property tests for Adm.Value. *)

open Adm

let check = Alcotest.check
let bool_t = Alcotest.bool
let string_t = Alcotest.string

let sample_tuple : Value.tuple =
  [
    ("Name", Value.text "Ada");
    ("Age", Value.Int 36);
    ("Home", Value.link "/ada.html");
    ( "Kids",
      Value.Rows [ [ ("K", Value.text "a") ]; [ ("K", Value.text "b") ] ] );
  ]

let test_equal_atoms () =
  check bool_t "text equal" true (Value.equal (Value.text "x") (Value.text "x"));
  check bool_t "text differs" false (Value.equal (Value.text "x") (Value.text "y"));
  check bool_t "int equal" true (Value.equal (Value.Int 3) (Value.Int 3));
  check bool_t "link vs text differ" false
    (Value.equal (Value.link "/a") (Value.text "/a"));
  check bool_t "null equal" true (Value.equal Value.Null Value.Null)

let test_equal_nested () =
  let r1 = Value.Rows [ [ ("A", Value.Int 1) ]; [ ("A", Value.Int 2) ] ] in
  let r2 = Value.Rows [ [ ("A", Value.Int 1) ]; [ ("A", Value.Int 2) ] ] in
  let r3 = Value.Rows [ [ ("A", Value.Int 2) ]; [ ("A", Value.Int 1) ] ] in
  check bool_t "rows equal" true (Value.equal r1 r2);
  check bool_t "rows order-sensitive" false (Value.equal r1 r3)

let test_compare_total () =
  let vs =
    [ Value.Null; Value.Bool true; Value.Int 1; Value.text "a"; Value.link "/x" ]
  in
  List.iter
    (fun v -> check bool_t "reflexive" true (Value.compare v v = 0))
    vs;
  check bool_t "null smallest" true (Value.compare Value.Null (Value.Int 0) < 0)

let test_accessors () =
  check (Alcotest.option string_t) "as_text" (Some "hi") (Value.as_text (Value.text "hi"));
  check (Alcotest.option string_t) "as_text of int" (Some "7") (Value.as_text (Value.Int 7));
  check (Alcotest.option Alcotest.int) "as_int" (Some 5) (Value.as_int (Value.Int 5));
  check (Alcotest.option Alcotest.int) "as_int of numeric text" (Some 12)
    (Value.as_int (Value.text "12"));
  check (Alcotest.option Alcotest.int) "as_int of text" None (Value.as_int (Value.text "x"));
  check (Alcotest.option string_t) "as_link" (Some "/a") (Value.as_link (Value.link "/a"));
  check (Alcotest.option string_t) "as_link of text" None (Value.as_link (Value.text "/a"))

let test_tuple_find () =
  check bool_t "find hit" true
    (Value.find sample_tuple "Name" = Some (Value.text "Ada"));
  check bool_t "find miss" true (Value.find sample_tuple "Nope" = None);
  check bool_t "has_attr" true (Value.has_attr sample_tuple "Kids");
  Alcotest.check_raises "find_exn raises"
    (Invalid_argument
       (Fmt.str "Value.find_exn: no attribute %S in tuple %a" "Zed" Value.pp_tuple
          sample_tuple))
    (fun () -> ignore (Value.find_exn sample_tuple "Zed"))

let test_tuple_set_remove () =
  let t = Value.set sample_tuple "Age" (Value.Int 37) in
  check bool_t "set replaces" true (Value.find t "Age" = Some (Value.Int 37));
  let t2 = Value.set sample_tuple "New" (Value.text "v") in
  check bool_t "set appends" true (Value.find t2 "New" = Some (Value.text "v"));
  let t3 = Value.remove sample_tuple "Age" in
  check bool_t "remove drops" true (Value.find t3 "Age" = None);
  check Alcotest.(list string_t) "attrs order" [ "Name"; "Age"; "Home"; "Kids" ]
    (Value.attrs sample_tuple)

let test_display () =
  check string_t "text display" "Ada" (Value.to_display (Value.text "Ada"));
  check string_t "null display" "" (Value.to_display Value.Null);
  check string_t "rows display" "[2 rows]"
    (Value.to_display (Value.Rows [ []; [] ]))

let test_type_names () =
  check string_t "null" "null" (Value.type_name Value.Null);
  check string_t "rows" "rows" (Value.type_name (Value.Rows []));
  check bool_t "atomicity" true (Value.is_atomic (Value.link "/x"));
  check bool_t "rows not atomic" false (Value.is_atomic (Value.Rows []))

(* Property tests. *)

let atom_gen =
  QCheck.Gen.(
    oneof
      [
        return Value.Null;
        map (fun b -> Value.Bool b) bool;
        map (fun i -> Value.Int i) small_signed_int;
        map (fun s -> Value.text s) (string_size (int_bound 12));
        map (fun s -> Value.link ("/" ^ s)) (string_size (int_bound 8));
      ])

let atom_arb = QCheck.make ~print:Value.to_string atom_gen

let prop_compare_antisym =
  QCheck.Test.make ~name:"Value.compare is antisymmetric" ~count:500
    (QCheck.pair atom_arb atom_arb)
    (fun (v1, v2) -> Value.compare v1 v2 = -Value.compare v2 v1)

let prop_equal_iff_compare =
  QCheck.Test.make ~name:"Value.equal agrees with compare" ~count:500
    (QCheck.pair atom_arb atom_arb)
    (fun (v1, v2) -> Value.equal v1 v2 = (Value.compare v1 v2 = 0))

(* Interning: atoms are hash-consed, and observable behavior (string
   round-trip, hash, equality, ordering) is exactly that of the
   pre-intern structural representation. *)

let string_arb =
  QCheck.make ~print:(Fmt.str "%S")
    QCheck.Gen.(string_size ~gen:printable (int_bound 24))

let prop_intern_round_trip =
  QCheck.Test.make ~name:"Atom.of_string round-trips" ~count:500 string_arb
    (fun s ->
      let a = Value.Atom.of_string s in
      Value.Atom.str a = s
      && Value.as_text (Value.text s) = Some s
      && Value.as_link (Value.link s) = Some s)

let prop_intern_hash_consing =
  QCheck.Test.make ~name:"equal strings intern to one atom" ~count:500
    string_arb (fun s ->
      let a = Value.Atom.of_string s
      and b = Value.Atom.of_string (String.sub s 0 (String.length s)) in
      Value.Atom.id a = Value.Atom.id b && Value.Atom.equal a b)

(* The stored atom hash is the structural hash of the string — NOT a
   function of the intern id — so hash-order observables (bucket
   iteration, distinct/join layouts) cannot depend on intern order,
   and a parallel run that interns in a different order stays
   byte-identical. *)
let prop_intern_hash_structural =
  QCheck.Test.make ~name:"Atom.hash = structural string hash" ~count:500
    string_arb (fun s ->
      Value.Atom.hash (Value.Atom.of_string s) = Hashtbl.hash s)

let compare_sign c = if c < 0 then -1 else if c > 0 then 1 else 0

let prop_intern_semantics_agree =
  QCheck.Test.make
    ~name:"interned equal/compare agree with string equal/compare" ~count:500
    (QCheck.pair string_arb string_arb)
    (fun (s1, s2) ->
      let a1 = Value.Atom.of_string s1 and a2 = Value.Atom.of_string s2 in
      Value.Atom.equal a1 a2 = String.equal s1 s2
      && compare_sign (Value.Atom.compare a1 a2) = compare_sign (String.compare s1 s2)
      && Value.equal (Value.text s1) (Value.text s2) = String.equal s1 s2
      && compare_sign (Value.compare (Value.text s1) (Value.text s2))
         = compare_sign (String.compare s1 s2))

let test_intern_table_grows () =
  let before = Value.Atom.interned () in
  let fresh = Fmt.str "intern-growth-probe-%d" before in
  ignore (Value.text fresh);
  check bool_t "new string grows the table" true
    (Value.Atom.interned () > before);
  ignore (Value.text fresh);
  ignore (Value.link fresh);
  check Alcotest.int "re-interning is free" (before + 1) (Value.Atom.interned ())

let prop_set_find =
  QCheck.Test.make ~name:"Value.set then find" ~count:200
    (QCheck.pair (QCheck.string_gen_of_size (QCheck.Gen.return 4) QCheck.Gen.printable) atom_arb)
    (fun (a, v) ->
      Value.find (Value.set sample_tuple a v) a = Some v)

let suite =
  ( "value",
    [
      Alcotest.test_case "equal atoms" `Quick test_equal_atoms;
      Alcotest.test_case "equal nested" `Quick test_equal_nested;
      Alcotest.test_case "compare total" `Quick test_compare_total;
      Alcotest.test_case "accessors" `Quick test_accessors;
      Alcotest.test_case "tuple find" `Quick test_tuple_find;
      Alcotest.test_case "tuple set/remove" `Quick test_tuple_set_remove;
      Alcotest.test_case "display" `Quick test_display;
      Alcotest.test_case "type names" `Quick test_type_names;
      QCheck_alcotest.to_alcotest prop_intern_round_trip;
      QCheck_alcotest.to_alcotest prop_intern_hash_consing;
      QCheck_alcotest.to_alcotest prop_intern_hash_structural;
      QCheck_alcotest.to_alcotest prop_intern_semantics_agree;
      Alcotest.test_case "intern table growth" `Quick test_intern_table_grows;
      QCheck_alcotest.to_alcotest prop_compare_antisym;
      QCheck_alcotest.to_alcotest prop_equal_iff_compare;
      QCheck_alcotest.to_alcotest prop_set_find;
    ] )
