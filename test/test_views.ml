(* Views as access paths (PR 9): the planner prices a registered
   materialized view by light-connection economics against pure
   navigation and picks the winner. These tests pin the two halves of
   that race — a fresh view wins and returns exactly the rows the
   navigation plan returns; a stale view over schemes observed to
   churn loses until revalidation — plus the property, across the
   three generated sites, that whichever plan wins the race computes
   the same relation. *)

open Webviews

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let schema = Sitegen.University.schema
let registry = Sitegen.University.view
let seeds = [ 7; 21; 42 ]

(* Row-set equality: plan families order rows differently, so compare
   the sorted row lists (values byte-identical, order normalized). *)
let sorted_rows rel = List.sort compare (Adm.Relation.rows_arrays rel)

let same_rows name r1 r2 =
  check (Alcotest.list (Alcotest.list Alcotest.string)) (name ^ ": attrs")
    [ Adm.Relation.attrs r1 ]
    [ Adm.Relation.attrs r2 ];
  check bool_t (name ^ ": rows") true (sorted_rows r1 = sorted_rows r2)

(* One site under test: a live connection for navigation plans and a
   materialized store (own connection, same site) behind a view
   store. *)
let setup_store site_schema site_registry site =
  let http = Websim.Http.connect site in
  let stats = Stats.of_instance (Websim.Crawler.crawl site_schema http) in
  let store = Matview.materialize site_schema (Websim.Http.connect site) in
  let vs = Viewstore.create site_schema site_registry store in
  (http, stats, vs)

(* Plan and run [sql] both ways over the same site; return both
   outcomes and both results. *)
let both_ways site_schema site_registry http stats vs sql =
  let source = Eval.live_source site_schema http in
  let nav = Planner.run site_schema stats site_registry source sql in
  let viewed =
    Planner.run
      ~views:(Viewstore.context vs)
      ~exec_views:(Viewstore.answerer vs)
      site_schema stats site_registry source sql
  in
  (nav, viewed)

(* --- the fresh-view race, pinned on the university site ------------ *)

let test_fresh_view_wins () =
  let uni = Sitegen.University.build () in
  let http, stats, vs =
    setup_store schema registry (Sitegen.University.site uni)
  in
  (* Email is not replicated on the department page, so the navigation
     plan must download every professor page; the fresh store answers
     without touching the wire at all. *)
  let sql = "SELECT p.PName, p.Email FROM Professor p" in
  let store_http = Matview.fetcher (Viewstore.store vs) |> Websim.Fetcher.http in
  let before = (Websim.Http.stats store_http).Websim.Http.gets in
  let (nav_outcome, nav_rel), (view_outcome, view_rel) =
    both_ways schema registry http stats vs sql
  in
  let store_gets = (Websim.Http.stats store_http).Websim.Http.gets - before in
  check bool_t "fresh view is chosen" true
    (view_outcome.Planner.view_used <> []);
  check bool_t "W0605 reported" true
    (List.exists
       (fun (d : Diagnostic.t) -> d.Diagnostic.code = "W0605")
       view_outcome.Planner.diagnostics);
  check bool_t "view plan is cheaper" true
    (view_outcome.Planner.best.Planner.cost
    < nav_outcome.Planner.best.Planner.cost);
  check int_t "fresh view downloads nothing" 0 store_gets;
  same_rows "view = navigation" nav_rel view_rel;
  (* provenance names the substituted occurrence *)
  match view_outcome.Planner.view_used with
  | [] -> Alcotest.fail "substitution provenance missing"
  | s :: _ ->
    check bool_t "provenance names a registered view" true
      (View.find registry s.Planner.sub_view <> None)

(* --- the stale race: churny schemes price the view out ------------- *)

let test_stale_view_loses_until_revalidated () =
  let uni = Sitegen.University.build () in
  let site = Sitegen.University.site uni in
  let http, stats, vs = setup_store schema registry site in
  let sql = "SELECT p.PName, p.Email FROM Professor p" in
  (* Age the whole store by one tick and teach the change-rate
     observations that these schemes churn on every check: the view
     now prices at pages × (HEAD + ~1 GET) > pages × GET of pure
     navigation, and must lose. *)
  Websim.Site.tick site;
  List.iter
    (fun scheme ->
      for _ = 1 to 20 do
        Viewstore.observe vs scheme ~changed:true
      done)
    [ "DeptListPage"; "DeptPage"; "ProfPage" ];
  let _, (stale_outcome, stale_rel) =
    both_ways schema registry http stats vs sql
  in
  check bool_t "stale churny view loses the race" true
    (stale_outcome.Planner.view_used = []);
  (* Revalidate the view (maintenance): every page HEAD-checked, the
     access dates bumped, the observations fed with reality (nothing
     actually changed). The race flips back. *)
  (match Viewstore.scan ~head_budget:max_int vs ~view:"Professor" with
  | None -> Alcotest.fail "Professor view must be scannable"
  | Some a -> check bool_t "revalidation issued HEADs" true (a.Exec.va_heads > 0));
  let _, (fresh_outcome, fresh_rel) =
    both_ways schema registry http stats vs sql
  in
  check bool_t "revalidated view wins again" true
    (fresh_outcome.Planner.view_used <> []);
  same_rows "stale-era = fresh-era rows" stale_rel fresh_rel

(* --- dead-view lint (W0606) ---------------------------------------- *)

let test_dead_view_lint () =
  let index = Viewmatch.make registry in
  let occurrences = [ View.find_exn registry "Professor" ] in
  let dead = Viewmatch.dead_views index occurrences in
  (* Course, Dept, … are untouched by a Professor-only workload *)
  check bool_t "some views are dead for a Professor-only workload" true
    (dead <> []);
  check bool_t "Professor itself is not dead" true
    (not
       (List.exists
          (fun (r : View.relation) -> r.View.rel_name = "Professor")
          dead));
  let ds = Viewmatch.workload_lint index occurrences in
  check bool_t "W0606 emitted" true
    (List.for_all (fun (d : Diagnostic.t) -> d.Diagnostic.code = "W0606") ds
    && List.length ds = List.length dead);
  check (Alcotest.list Alcotest.string) "empty workload: no verdict" []
    (List.map
       (fun (d : Diagnostic.t) -> d.Diagnostic.code)
       (Viewmatch.workload_lint index []))

(* --- property: view-substituted best = navigation best -------------- *)

let uni_site = lazy (Sitegen.University.build ())

let uni_env =
  lazy
    (let u = Lazy.force uni_site in
     setup_store schema registry (Sitegen.University.site u))

let agree_on name site_schema site_registry (http, stats, vs) sql =
  let (_, nav_rel), (_, view_rel) =
    both_ways site_schema site_registry http stats vs sql
  in
  same_rows name nav_rel view_rel

let test_seeded_university_agreement () =
  let env = Lazy.force uni_env in
  List.iter
    (fun seed ->
      let st = Random.State.make [| seed |] in
      for i = 1 to 5 do
        let sql = Test_equivalence.query_gen st in
        agree_on (Fmt.str "uni seed %d query %d" seed i) schema registry env sql
      done)
    seeds

let prop_university_agreement =
  QCheck.Test.make ~name:"fresh views: substituted best = navigation best"
    ~count:25 Test_equivalence.query_arb (fun sql ->
      let http, stats, vs = Lazy.force uni_env in
      let (_, nav_rel), (_, view_rel) =
        both_ways schema registry http stats vs sql
      in
      Adm.Relation.attrs nav_rel = Adm.Relation.attrs view_rel
      && sorted_rows nav_rel = sorted_rows view_rel)

let test_seeded_catalog_agreement () =
  let c = Sitegen.Catalog.build () in
  let env =
    setup_store Sitegen.Catalog.schema Sitegen.Catalog.view
      (Sitegen.Catalog.site c)
  in
  let products = Sitegen.Catalog.products c in
  List.iter
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let p = List.nth products (Random.State.int st (List.length products)) in
      [
        Fmt.str "SELECT p.PName, p.Price FROM Product p WHERE p.Brand = '%s'"
          p.Sitegen.Catalog.brand;
        Fmt.str
          "SELECT p.PName FROM Product p WHERE p.Category = '%s' AND p.Price < %d"
          p.Sitegen.Catalog.category
          (p.Sitegen.Catalog.price + 1);
      ]
      |> List.iteri (fun i sql ->
             agree_on
               (Fmt.str "catalog seed %d query %d" seed i)
               Sitegen.Catalog.schema Sitegen.Catalog.view env sql))
    seeds

let test_seeded_bibliography_agreement () =
  let b = Sitegen.Bibliography.build () in
  let bib_schema = Sitegen.Bibliography.schema in
  (* the bibliography site ships no hand-written external view: the
     inferred automatic registry is the view under test *)
  let bib_registry = View.auto_registry bib_schema in
  let env = setup_store bib_schema bib_registry (Sitegen.Bibliography.site b) in
  List.iter
    (fun seed ->
      ignore seed;
      List.iteri
        (fun i (rel : View.relation) ->
          match rel.View.rel_attrs with
          | a :: _ ->
            agree_on
              (Fmt.str "bib seed %d rel %d" seed i)
              bib_schema bib_registry env
              (Fmt.str "SELECT x.%s FROM %s x" a rel.View.rel_name)
          | [] -> ())
        bib_registry)
    seeds

let suite =
  ( "views",
    [
      Alcotest.test_case "fresh view wins the cost race" `Quick
        test_fresh_view_wins;
      Alcotest.test_case "stale view loses until revalidated" `Quick
        test_stale_view_loses_until_revalidated;
      Alcotest.test_case "dead-view lint (W0606)" `Quick test_dead_view_lint;
      Alcotest.test_case "seeded university agreement (7/21/42)" `Slow
        test_seeded_university_agreement;
      QCheck_alcotest.to_alcotest prop_university_agreement;
      Alcotest.test_case "seeded catalog agreement (7/21/42)" `Slow
        test_seeded_catalog_agreement;
      Alcotest.test_case "seeded bibliography agreement (7/21/42)" `Slow
        test_seeded_bibliography_agreement;
    ] )
