(* Tests for the web substrate: site, HTTP, wrapper, crawler. *)

open Adm

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

(* ------------------------------------------------------------------ *)
(* Site and HTTP                                                       *)
(* ------------------------------------------------------------------ *)

let test_site_put_get () =
  let site = Websim.Site.create () in
  Websim.Site.put site ~url:"/a" ~body:"A";
  check int_t "one page" 1 (Websim.Site.page_count site);
  (match Websim.Site.find site "/a" with
  | Some p -> check string_t "body" "A" p.Websim.Site.body
  | None -> Alcotest.fail "page missing");
  Websim.Site.delete site "/a";
  check bool_t "deleted" false (Websim.Site.mem site "/a")

let test_site_clock_and_dates () =
  let site = Websim.Site.create () in
  Websim.Site.put site ~url:"/a" ~body:"A";
  Websim.Site.tick site;
  Websim.Site.put site ~url:"/b" ~body:"B";
  let date u = (Option.get (Websim.Site.find site u)).Websim.Site.last_modified in
  check int_t "first at 0" 0 (date "/a");
  check int_t "second at 1" 1 (date "/b");
  Websim.Site.tick site;
  Websim.Site.touch site "/a";
  check int_t "touch bumps" 2 (date "/a")

let test_site_edit () =
  let site = Websim.Site.create () in
  Websim.Site.put site ~url:"/a" ~body:"old";
  Websim.Site.tick site;
  check bool_t "edit ok" true (Websim.Site.edit site "/a" (fun b -> b ^ "!"));
  check string_t "edited" "old!" (Option.get (Websim.Site.find site "/a")).Websim.Site.body;
  check bool_t "edit of missing" false (Websim.Site.edit site "/zzz" Fun.id)

let test_http_counters () =
  let site = Websim.Site.create () in
  Websim.Site.put site ~url:"/a" ~body:"hello";
  let http = Websim.Http.connect site in
  ignore (Websim.Http.get http "/a");
  ignore (Websim.Http.get http "/missing");
  ignore (Websim.Http.head http "/a");
  let s = Websim.Http.stats http in
  check int_t "gets" 2 s.Websim.Http.gets;
  check int_t "heads" 1 s.Websim.Http.heads;
  check int_t "404" 1 s.Websim.Http.not_found;
  check int_t "bytes" 5 s.Websim.Http.bytes;
  Websim.Http.reset_stats http;
  check int_t "reset" 0 (Websim.Http.stats http).Websim.Http.gets

let test_http_snapshot_diff () =
  let site = Websim.Site.create () in
  Websim.Site.put site ~url:"/a" ~body:"x";
  let http = Websim.Http.connect site in
  let before = Websim.Http.snapshot http in
  ignore (Websim.Http.get http "/a");
  let d = Websim.Http.diff ~before ~after:(Websim.Http.snapshot http) in
  check int_t "delta gets" 1 d.Websim.Http.gets

(* ------------------------------------------------------------------ *)
(* Wrapper                                                             *)
(* ------------------------------------------------------------------ *)

let toy_scheme =
  Page_scheme.make "Toy"
    [
      Page_scheme.attr "Name" Webtype.Text;
      Page_scheme.attr "Count" Webtype.Int;
      Page_scheme.attr "Next" (Webtype.Link "Toy");
      Page_scheme.attr ~optional:true "Note" Webtype.Text;
      Page_scheme.attr "Items"
        (Webtype.List
           [ ("Label", Webtype.Text); ("To", Webtype.Link "Toy") ]);
    ]

let toy_tuple : Value.tuple =
  [
    ("Name", Value.text "toy & co");
    ("Count", Value.Int 3);
    ("Next", Value.link "/next.html");
    ("Note", Value.Null);
    ( "Items",
      Value.Rows
        [
          [ ("Label", Value.text "first"); ("To", Value.link "/1.html") ];
          [ ("Label", Value.text "second"); ("To", Value.link "/2.html") ];
        ] );
  ]

let test_wrapper_roundtrip () =
  let html = Websim.Wrapper.render ~title:"Toy" toy_tuple in
  let extracted = Websim.Wrapper.extract toy_scheme ~url:"/toy.html" html in
  check bool_t "URL attached" true
    (Value.find extracted "URL" = Some (Value.link "/toy.html"));
  check bool_t "name escaped text roundtrips" true
    (Value.find extracted "Name" = Some (Value.text "toy & co"));
  check bool_t "int parsed" true (Value.find extracted "Count" = Some (Value.Int 3));
  check bool_t "link href" true
    (Value.find extracted "Next" = Some (Value.link "/next.html"));
  check bool_t "optional null" true (Value.find extracted "Note" = Some Value.Null);
  match Value.find extracted "Items" with
  | Some (Value.Rows [ r1; _ ]) ->
    check bool_t "nested label" true (Value.find r1 "Label" = Some (Value.text "first"));
    check bool_t "nested link" true (Value.find r1 "To" = Some (Value.link "/1.html"))
  | _ -> Alcotest.fail "nested items lost"

let test_wrapper_missing_required () =
  let partial = Value.remove toy_tuple "Name" in
  let html = Websim.Wrapper.render partial in
  Alcotest.check_raises "missing non-optional"
    (Websim.Wrapper.Wrap_error
       "page /t (Toy): missing non-optional attribute Name") (fun () ->
      ignore (Websim.Wrapper.extract toy_scheme ~url:"/t" html))

let test_wrapper_ignores_chrome () =
  (* extra unclassified markup must not confuse extraction *)
  let html = Websim.Wrapper.render ~title:"Noise" toy_tuple in
  check bool_t "nav chrome present" true
    (List.length (Html.by_class "nav" (Html.parse html)) = 1);
  let t = Websim.Wrapper.extract toy_scheme ~url:"/t" html in
  check bool_t "extraction unaffected" true
    (Value.find t "Count" = Some (Value.Int 3))

let test_wrapper_scoping () =
  (* same attribute name at two nesting levels: outer extraction must
     not descend into the nested list *)
  let scheme =
    Page_scheme.make "Scoped"
      [
        Page_scheme.attr "Name" Webtype.Text;
        Page_scheme.attr "Inner" (Webtype.List [ ("Name", Webtype.Text) ]);
      ]
  in
  let tuple =
    [
      ("Name", Value.text "outer");
      ("Inner", Value.Rows [ [ ("Name", Value.text "inner") ] ]);
    ]
  in
  let html = Websim.Wrapper.render tuple in
  let t = Websim.Wrapper.extract scheme ~url:"/s" html in
  check bool_t "outer name" true (Value.find t "Name" = Some (Value.text "outer"));
  match Value.find t "Inner" with
  | Some (Value.Rows [ r ]) ->
    check bool_t "inner name" true (Value.find r "Name" = Some (Value.text "inner"))
  | _ -> Alcotest.fail "inner list lost"

(* property: random toy tuples roundtrip through render/extract *)
let toy_gen =
  QCheck.Gen.(
    let label = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
    map2
      (fun (name, count) items ->
        [
          ("Name", Value.text name);
          ("Count", Value.Int count);
          ("Next", Value.link "/n.html");
          ("Note", Value.Null);
          ( "Items",
            Value.Rows
              (List.mapi
                 (fun i l ->
                   [ ("Label", Value.text l); ("To", Value.link (Fmt.str "/%d.html" i)) ])
                 items) );
        ])
      (pair label (int_bound 100))
      (list_size (int_bound 5) label))

let toy_arb = QCheck.make ~print:(Fmt.str "%a" Value.pp_tuple) toy_gen

let prop_wrapper_roundtrip =
  QCheck.Test.make ~name:"wrapper render/extract roundtrip" ~count:100 toy_arb
    (fun tuple ->
      let html = Websim.Wrapper.render tuple in
      let extracted = Websim.Wrapper.extract toy_scheme ~url:"/p" html in
      Value.equal_tuple
        (("URL", Value.link "/p") :: tuple)
        extracted)

(* ------------------------------------------------------------------ *)
(* Crawler                                                             *)
(* ------------------------------------------------------------------ *)

let test_crawl_university () =
  let uni = Sitegen.University.build () in
  let http = Websim.Http.connect (Sitegen.University.site uni) in
  let instance = Websim.Crawler.crawl Sitegen.University.schema http in
  let card name =
    Relation.cardinality (Websim.Crawler.find_relation_exn instance name)
  in
  check int_t "depts" 3 (card "DeptPage");
  check int_t "profs" 20 (card "ProfPage");
  check int_t "courses" 50 (card "CoursePage");
  check int_t "entry pages" 1 (card "HomePage");
  check int_t "pages fetched = site size" (Websim.Site.page_count (Sitegen.University.site uni))
    instance.Websim.Crawler.fetched;
  check Alcotest.(list string_t) "instance satisfies constraints" []
    (Websim.Crawler.validate Sitegen.University.schema instance)

let test_crawl_counts_each_page_once () =
  let uni = Sitegen.University.build () in
  let http = Websim.Http.connect (Sitegen.University.site uni) in
  let _ = Websim.Crawler.crawl Sitegen.University.schema http in
  let s = Websim.Http.stats http in
  check int_t "GET per page exactly once"
    (Websim.Site.page_count (Sitegen.University.site uni))
    s.Websim.Http.gets

let test_outlinks () =
  let uni = Sitegen.University.build () in
  let http = Websim.Http.connect (Sitegen.University.site uni) in
  let instance = Websim.Crawler.crawl Sitegen.University.schema http in
  let ps = Schema.find_scheme_exn Sitegen.University.schema "ProfPage" in
  let prof_rel = Websim.Crawler.find_relation_exn instance "ProfPage" in
  match Relation.rows prof_rel with
  | tuple :: _ ->
    let links = Websim.Crawler.outlinks ps tuple in
    check bool_t "has dept link" true
      (List.exists (fun (_, target) -> String.equal target "DeptPage") links)
  | [] -> Alcotest.fail "no professors crawled"

let test_crawl_tolerates_dangling () =
  let uni = Sitegen.University.build () in
  let site = Sitegen.University.site uni in
  (* break the site: remove one course page but not the links to it *)
  let any_course = List.hd (Sitegen.University.courses uni) in
  Websim.Site.delete site
    (Sitegen.University.course_url any_course.Sitegen.University.c_name);
  let http = Websim.Http.connect site in
  let instance = Websim.Crawler.crawl Sitegen.University.schema http in
  check bool_t "crawl completes" true (instance.Websim.Crawler.fetched > 0)

let suite =
  ( "websim",
    [
      Alcotest.test_case "site put/get" `Quick test_site_put_get;
      Alcotest.test_case "site clock/dates" `Quick test_site_clock_and_dates;
      Alcotest.test_case "site edit" `Quick test_site_edit;
      Alcotest.test_case "http counters" `Quick test_http_counters;
      Alcotest.test_case "http snapshot/diff" `Quick test_http_snapshot_diff;
      Alcotest.test_case "wrapper roundtrip" `Quick test_wrapper_roundtrip;
      Alcotest.test_case "wrapper missing required" `Quick test_wrapper_missing_required;
      Alcotest.test_case "wrapper ignores chrome" `Quick test_wrapper_ignores_chrome;
      Alcotest.test_case "wrapper scoping" `Quick test_wrapper_scoping;
      QCheck_alcotest.to_alcotest prop_wrapper_roundtrip;
      Alcotest.test_case "crawl university" `Quick test_crawl_university;
      Alcotest.test_case "crawl counts pages once" `Quick test_crawl_counts_each_page_once;
      Alcotest.test_case "outlinks" `Quick test_outlinks;
      Alcotest.test_case "crawl tolerates dangling" `Quick test_crawl_tolerates_dangling;
    ] )
